"""Engine equivalence: vectorized kernels == row-at-a-time semantics.

The numpy-backed Table engine and the prefix-sum schedulers must be
drop-in replacements: same values, same Python types, same ordering as
the original pure-Python implementations. These property-style tests
pit every vectorized kernel against a reference implementation of the
seed semantics on randomized tables mixing int/float/str/bool columns
(plus an object-fallback mixed column), and both schedulers against
their naive O(starts x duration) originals.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datacenter.scheduler import (
    BatchJob,
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from repro.errors import SimulationError
from repro.tabular import Table, col

# ----------------------------------------------------------------------
# Reference semantics (the seed's row-at-a-time implementation)
# ----------------------------------------------------------------------


def ref_where(rows, predicate):
    return [dict(row) for row in rows if predicate(row)]


def ref_with_column(rows, name, fn):
    return [{**row, name: fn(row)} for row in rows]


def ref_sort(rows, names, reverse=False):
    return sorted(
        rows, key=lambda row: tuple(row[name] for name in names), reverse=reverse
    )


def ref_group(rows, names):
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault(tuple(row[name] for name in names), []).append(row)
    return list(groups.items())


def ref_aggregate(rows, by, aggregations):
    records = []
    for key, members in ref_group(rows, by):
        record = dict(zip(by, key))
        for out_name, (in_name, reducer) in aggregations.items():
            record[out_name] = reducer([member[in_name] for member in members])
        records.append(record)
    return records


def ref_join(left_rows, right_rows, left_names, right_names, keys):
    right_index: dict[tuple, list[int]] = {}
    for index, row in enumerate(right_rows):
        right_index.setdefault(tuple(row[k] for k in keys), []).append(index)
    right_extra = [name for name in right_names if name not in keys]
    out = []
    for left_row in left_rows:
        for index in right_index.get(tuple(left_row[k] for k in keys), []):
            record = dict(left_row)
            for name in right_extra:
                target = f"{name}_right" if name in left_names else name
                record[target] = right_rows[index][name]
            out.append(record)
    return out


def typed(records):
    """Rows with explicit types, so 1 != 1.0 != True in comparisons."""
    return [
        {key: (type(value).__name__, value) for key, value in row.items()}
        for row in records
    ]


# ----------------------------------------------------------------------
# Table strategies: homogeneous typed columns plus an object fallback
# ----------------------------------------------------------------------

# Dyadic rationals with a short mantissa: every partial sum of up to
# ~2^20 of them is exactly representable in float64, so any summation
# order produces identical bits. (On arbitrary floats the vectorized
# sum kernel — pairwise summation — can differ from sequential ``sum``
# in the last ulp; it is the *more* accurate of the two.)
finite_floats = st.integers(min_value=-(2**30), max_value=2**30).map(
    lambda value: value / 1024.0
)

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "k": st.sampled_from(["p", "q", "r"]),
            "n": st.integers(min_value=-50, max_value=50),
            "x": finite_floats,
            "b": st.booleans(),
            "m": st.one_of(
                st.integers(min_value=-5, max_value=5),
                st.sampled_from(["u", "v"]),
            ),
        }
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_where_callable_matches_reference(rows):
    table = Table.from_records(rows)
    result = table.where(lambda r: r["n"] >= 0 and r["b"]).to_records()
    assert typed(result) == typed(
        ref_where(rows, lambda r: r["n"] >= 0 and r["b"])
    )


@settings(max_examples=60, deadline=None)
@given(rows_strategy, st.integers(min_value=-50, max_value=50))
def test_where_expression_forms_match_callable(rows, threshold):
    table = Table.from_records(rows)
    baseline = table.where(lambda r: r["n"] >= threshold).to_records()
    assert typed(table.where("n", ">=", threshold).to_records()) == typed(baseline)
    assert typed(table.where(col("n") >= threshold).to_records()) == typed(baseline)


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_where_compound_expression_matches_callable(rows):
    table = Table.from_records(rows)
    baseline = table.where(
        lambda r: (r["n"] >= 0 and r["x"] < 100.0) or r["k"] == "p"
    ).to_records()
    mask = ((col("n") >= 0) & (col("x") < 100.0)) | (col("k") == "p")
    assert typed(table.where(mask).to_records()) == typed(baseline)


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_where_on_object_column_matches_callable(rows):
    table = Table.from_records(rows)
    baseline = table.where(lambda r: r["m"] == "u").to_records()
    assert typed(table.where("m", "==", "u").to_records()) == typed(baseline)


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_where_isin_matches_callable(rows):
    table = Table.from_records(rows)
    baseline = table.where(lambda r: r["k"] in ("p", "r")).to_records()
    assert typed(table.where("k", "in", ["p", "r"]).to_records()) == typed(baseline)
    assert typed(table.where(col("k").isin(["p", "r"])).to_records()) == typed(baseline)
    complement = table.where(lambda r: r["k"] not in ("p", "r")).to_records()
    assert typed(table.where("k", "not in", ["p", "r"]).to_records()) == typed(
        complement
    )


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_with_column_expression_matches_callable(rows):
    table = Table.from_records(rows)
    from_callable = table.with_column(
        "y", lambda r: r["x"] * 2.0 + r["n"]
    ).to_records()
    from_expr = table.with_column("y", col("x") * 2.0 + col("n")).to_records()
    assert typed(from_expr) == typed(from_callable)
    assert typed(from_callable) == typed(
        ref_with_column(rows, "y", lambda r: r["x"] * 2.0 + r["n"])
    )


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_with_column_int_expression_preserves_int(rows):
    table = Table.from_records(rows)
    from_callable = table.with_column("y", lambda r: r["n"] * 2).to_records()
    from_expr = table.with_column("y", col("n") * 2).to_records()
    assert typed(from_expr) == typed(from_callable)


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_sort_by_is_stable_both_directions(rows):
    table = Table.from_records(rows)
    for names in (["k"], ["x"], ["n"], ["b"], ["k", "n"], ["b", "x", "k"]):
        for reverse in (False, True):
            got = table.sort_by(*names, reverse=reverse).to_records()
            want = ref_sort(rows, names, reverse=reverse)
            assert typed(got) == typed(want), (names, reverse)


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_group_by_order_and_membership(rows):
    table = Table.from_records(rows)
    for names in (["k"], ["k", "b"], ["n"], ["m"]):
        got = [
            (key, group.to_records()) for key, group in table.group_by(*names)
        ]
        want = ref_group(rows, names)
        assert [key for key, _ in got] == [key for key, _ in want], names
        for (_, got_rows), (_, want_rows) in zip(got, want):
            assert typed(got_rows) == typed(want_rows), names


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_aggregate_builtin_reducers_match_reference(rows):
    table = Table.from_records(rows)
    aggregations = {
        "total": ("n", sum),
        "weight": ("x", sum),
        "count": ("x", len),
        "low": ("n", min),
        "high": ("x", max),
    }
    got = table.aggregate(by=["k"], **aggregations).to_records()
    want = ref_aggregate(rows, ["k"], aggregations)
    assert typed(got) == typed(want)


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_aggregate_multi_key_and_custom_reducer(rows):
    table = Table.from_records(rows)
    aggregations = {
        "spread": ("x", lambda values: max(values) - min(values)),
        "names": ("k", lambda values: "".join(values)),
    }
    got = table.aggregate(by=["k", "b"], **aggregations).to_records()
    want = ref_aggregate(rows, ["k", "b"], aggregations)
    assert typed(got) == typed(want)


join_left = st.lists(
    st.fixed_dictionaries(
        {
            "k": st.sampled_from(["a", "b", "c"]),
            "n": st.integers(min_value=0, max_value=3),
            "v": finite_floats,
        }
    ),
    min_size=1,
    max_size=25,
)

join_right = st.lists(
    st.fixed_dictionaries(
        {
            "k": st.sampled_from(["a", "b", "c", "d"]),
            "n": st.integers(min_value=0, max_value=3),
            "v": st.integers(min_value=-9, max_value=9),
            "w": st.sampled_from(["x", "y"]),
        }
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(join_left, join_right)
def test_join_single_key_matches_reference(left_rows, right_rows):
    left = Table.from_records(left_rows)
    right = Table.from_records(right_rows)
    got = left.join(right, on="k").to_records()
    want = ref_join(
        left_rows, right_rows, list(left_rows[0]), list(right_rows[0]), ["k"]
    )
    assert typed(got) == typed(want)


@settings(max_examples=60, deadline=None)
@given(join_left, join_right)
def test_join_multi_key_matches_reference(left_rows, right_rows):
    left = Table.from_records(left_rows)
    right = Table.from_records(right_rows)
    got = left.join(right, on=["k", "n"]).to_records()
    want = ref_join(
        left_rows, right_rows, list(left_rows[0]), list(right_rows[0]), ["k", "n"]
    )
    assert typed(got) == typed(want)


def test_join_suffixes_and_multiplicity_exactly():
    left = Table.from_records([{"k": 1, "v": "a"}, {"k": 1, "v": "b"}])
    right = Table.from_records(
        [{"k": 1, "v": "x"}, {"k": 1, "v": "y"}, {"k": 2, "v": "z"}]
    )
    joined = left.join(right, on="k")
    assert joined.column_names == ["k", "v", "v_right"]
    assert joined.column("v") == ["a", "a", "b", "b"]
    assert joined.column("v_right") == ["x", "y", "x", "y"]


def test_empty_filter_result_keeps_schema_and_chains():
    table = Table.from_records([{"k": "a", "x": 1.0}])
    empty = table.where("x", ">", 99.0)
    assert empty.num_rows == 0
    assert empty.column_names == ["k", "x"]
    assert empty.sort_by("x").num_rows == 0


class TestEngineEdgeCases:
    """Divergences between numpy kernels and Python semantics that the
    engine must paper over (review findings, kept as regressions)."""

    def test_isin_mixed_type_values_keep_python_semantics(self):
        table = Table({"v": [3, 4]})
        assert table.where("v", "in", ["a", 3]).column("v") == [3]
        assert table.where(col("v").isin(["a", 3])).column("v") == [3]
        assert table.where("v", "not in", ["a", 3]).column("v") == [4]

    def test_isin_huge_int_keys_do_not_collapse_via_float(self):
        table = Table({"v": [2**53, 2**53 + 1]})
        assert table.where("v", "in", [float(2**53)]).column("v") == [2**53]

    def test_wrong_length_expression_mask_raises(self):
        from repro.errors import TableError

        table = Table({"a": [1.0, 2.5, 3.0, 4.0]})
        with pytest.raises(TableError, match="mask has 1 values"):
            table.where(col("a") > [2])

    def test_where_without_value_raises(self):
        from repro.errors import TableError

        with pytest.raises(TableError, match="needs an operator and a value"):
            Table({"a": [1.0, 2.0]}).where("a", "==")

    def test_join_mixed_int_float_keys_beyond_float_precision(self):
        left = Table({"k": [2**53, 2**53 + 1]})
        right = Table({"k": [float(2**53)], "v": ["m"]})
        joined = left.join(right, on="k")
        assert joined.column("k") == [2**53]

    def test_dtype_mismatched_equality_collapses_to_empty(self):
        table = Table({"k": ["p", "q"]})
        assert table.where(col("k") == 5).num_rows == 0
        assert table.where("k", "==", 5).num_rows == 0

    def test_quantities_copy_draw_arrays(self):
        from repro.units import Carbon

        backing = np.array([1.0, 2.0])
        carbon = Carbon.from_grams(backing)
        backing[0] = -5.0
        assert carbon.grams[0] == 1.0

    def test_mutating_batched_model_cannot_corrupt_fallback(self):
        from repro.analysis.uncertainty import Uniform, monte_carlo

        def model(params):
            if isinstance(params["a"], np.ndarray):
                params["a"] += 100.0
                raise TypeError("scalars only")
            return params["a"]

        result = monte_carlo(
            model, {"a": Uniform(0.0, 1.0)}, samples=50, seed=0, vectorized=True
        )
        assert 0.0 <= result.mean <= 1.0


# ----------------------------------------------------------------------
# Scheduler equivalence: prefix-sum placement == naive window scans
# ----------------------------------------------------------------------


def _naive_job_carbon(job, start, intensity):
    return float(np.sum(intensity[start : start + job.duration_hours]) * job.power_kw)


def _naive_fits(job, start, load, capacity_kw):
    window = load[start : start + job.duration_hours]
    return bool(np.all(window + job.power_kw <= capacity_kw + 1e-9))


def _naive_starts(job, horizon):
    latest = (
        horizon - job.duration_hours
        if job.deadline_hour is None
        else min(job.deadline_hour - job.duration_hours, horizon - job.duration_hours)
    )
    return range(job.arrival_hour, latest + 1)


def ref_schedule_agnostic(jobs, intensity, capacity_kw):
    load = np.zeros(intensity.shape[0])
    placements = []
    for job in sorted(jobs, key=lambda j: (j.arrival_hour, j.name)):
        for start in _naive_starts(job, intensity.shape[0]):
            if _naive_fits(job, start, load, capacity_kw):
                load[start : start + job.duration_hours] += job.power_kw
                placements.append(
                    (job.name, start, _naive_job_carbon(job, start, intensity))
                )
                break
        else:
            raise SimulationError(f"{job.name}: no feasible slot")
    return placements


def ref_schedule_aware(jobs, intensity, capacity_kw):
    load = np.zeros(intensity.shape[0])
    placements = []
    for job in sorted(jobs, key=lambda j: (-j.power_kw * j.duration_hours, j.name)):
        best_start, best_grams = None, None
        for start in _naive_starts(job, intensity.shape[0]):
            if not _naive_fits(job, start, load, capacity_kw):
                continue
            grams = _naive_job_carbon(job, start, intensity)
            if best_grams is None or grams < best_grams:
                best_start, best_grams = start, grams
        if best_start is None:
            raise SimulationError(f"{job.name}: no feasible slot")
        load[best_start : best_start + job.duration_hours] += job.power_kw
        placements.append((job.name, best_start, best_grams))
    return placements


# Integer-valued intensities keep every float sum exact, so the naive
# np.sum windows and the prefix-sum subtractions agree bit-for-bit and
# tie-breaking between near-equal windows cannot diverge.
job_strategy = st.builds(
    BatchJob,
    name=st.uuids().map(str),
    duration_hours=st.integers(min_value=1, max_value=6),
    power_kw=st.sampled_from([25.0, 50.0, 75.0, 100.0]),
    arrival_hour=st.integers(min_value=0, max_value=12),
)

grid_strategy = st.lists(
    st.integers(min_value=1, max_value=600), min_size=24, max_size=48
).map(lambda values: np.asarray(values, dtype=float))


@settings(max_examples=40, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8), grid_strategy)
def test_aware_scheduler_matches_naive_reference(jobs, grid):
    capacity = 175.0
    try:
        want = ref_schedule_aware(jobs, grid, capacity)
    except SimulationError:
        with pytest.raises(SimulationError):
            schedule_carbon_aware(jobs, grid, capacity)
        return
    got = schedule_carbon_aware(jobs, grid, capacity)
    assert [(p.job.name, p.start_hour, p.carbon.grams) for p in got.placements] == want


@settings(max_examples=40, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8), grid_strategy)
def test_agnostic_scheduler_matches_naive_reference(jobs, grid):
    capacity = 175.0
    try:
        want = ref_schedule_agnostic(jobs, grid, capacity)
    except SimulationError:
        with pytest.raises(SimulationError):
            schedule_carbon_agnostic(jobs, grid, capacity)
        return
    got = schedule_carbon_agnostic(jobs, grid, capacity)
    assert [(p.job.name, p.start_hour, p.carbon.grams) for p in got.placements] == want
