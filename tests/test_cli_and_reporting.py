"""Tests for the CLI, markdown report, and fleet-to-GHG reporting."""

from __future__ import annotations

import importlib

import pytest

from repro.cli import build_parser, main
from repro.datacenter.fleet import simulate_fleet
from repro.datacenter.reporting import (
    fleet_to_report_series,
    fleet_year_to_inventory,
)
from repro.errors import AccountingError
from repro.experiments import (
    EXPERIMENT_IDS,
    experiment_title,
    experiment_titles,
    run_experiment,
)
from repro.experiments import registry as experiment_registry
from repro.experiments.markdown import markdown_report, markdown_table
from repro.experiments.ext04_fleet import facebook_like_parameters
from repro.tabular import Table


class TestCLI:
    def test_parser_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "tab04" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "tab02"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out

    def test_run_all(self, capsys):
        assert main(["run", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") >= 20

    def test_checks_command(self, capsys):
        assert main(["checks"]) == 0
        out = capsys.readouterr().out
        assert "0 failing" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_does_not_run_any_experiment(self, capsys, monkeypatch):
        """`repro list` must stay O(imports): titles come from registry
        metadata, never from executing a driver."""

        def boom(*_args, **_kwargs):
            raise AssertionError("list must not execute experiments")

        for experiment_id in EXPERIMENT_IDS:
            module = importlib.import_module(
                f"repro.experiments.{experiment_registry._MODULES[experiment_id]}"
            )
            monkeypatch.setattr(module, "run", boom)
        monkeypatch.setattr(experiment_registry, "run_experiment", boom)
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == len(EXPERIMENT_IDS)

    def test_run_help_derived_from_registry(self):
        # The run target help names the real registry bounds, so new
        # experiments can't leave the text stale.
        from repro.cli import _experiment_help

        assert EXPERIMENT_IDS[0] in _experiment_help()
        assert EXPERIMENT_IDS[-1] in _experiment_help()
        assert "ext11" in _experiment_help()
        assert "sweep" in build_parser().format_help()
        assert "trace" in build_parser().format_help()

    def test_run_all_parallel(self, capsys):
        from repro.experiments import clear_result_cache

        clear_result_cache()
        assert main(["run", "all", "--parallel", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") >= 20

    def test_sweep_command(self, capsys):
        assert main(["sweep", "fleet_growth_lifetime"]) == 0
        out = capsys.readouterr().out
        assert "annual_growth" in out and "capex" in out

    def test_sweep_markdown(self, capsys):
        assert main(["sweep", "provisioning_mix", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("### provisioning_mix")
        assert "| utilization_target |" in out

    def test_sweep_with_draws_reports_quantile_columns(self, capsys):
        assert main(
            ["sweep", "provisioning_mix", "--draws", "8", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "carbon_saving_fraction_p05" in out
        assert "8 draws (seed 3), batched draw matrix" in out

    def test_sweep_with_draws_markdown(self, capsys):
        assert main(
            ["sweep", "provisioning_mix", "--draws", "4", "--markdown"]
        ) == 0
        out = capsys.readouterr().out
        assert "| carbon_saving_fraction_p50 |" in out.replace("| ", "| ")

    def test_sweep_band_chart(self, capsys):
        assert main(
            [
                "sweep",
                "provisioning_mix",
                "--draws",
                "8",
                "--band",
                "carbon_saving_fraction",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "#=carbon_saving_fraction median" in out

    def test_sweep_band_is_fenced_in_markdown_mode(self, capsys):
        assert main(
            [
                "sweep",
                "provisioning_mix",
                "--draws",
                "8",
                "--band",
                "carbon_saving_fraction",
                "--markdown",
            ]
        ) == 0
        out = capsys.readouterr().out
        fence_open = out.index("```")
        assert "#=carbon_saving_fraction median" in out[fence_open:]
        assert out.rstrip().endswith("```")

    def test_sweep_band_needs_draws(self, capsys):
        assert main(
            ["sweep", "provisioning_mix", "--band", "carbon_saving_fraction"]
        ) == 2
        assert "--band needs --draws" in capsys.readouterr().err

    def test_sweep_seed_needs_draws(self, capsys):
        # A deterministic sweep must not silently ignore --seed.
        assert main(["sweep", "provisioning_mix", "--seed", "7"]) == 2
        assert "--seed needs --draws" in capsys.readouterr().err

    def test_sweep_band_unknown_metric_exits_2(self, capsys):
        assert main(
            ["sweep", "provisioning_mix", "--draws", "4", "--band", "nope"]
        ) == 2
        assert "no metric" in capsys.readouterr().err

    def test_trace_list(self, capsys):
        assert main(["trace", "list", "--hours", "24"]) == 0
        out = capsys.readouterr().out
        assert "india" in out and "iceland_ramp50" in out
        assert "g/kWh" in out

    def test_trace_show(self, capsys):
        assert main(["trace", "show", "world", "--hours", "24"]) == 0
        out = capsys.readouterr().out
        assert "cleanest 4 h window" in out
        assert "g_per_kwh" in out

    def test_trace_show_unknown_profile_exits_2(self, capsys):
        assert main(["trace", "show", "atlantis"]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_show_needs_a_profile(self, capsys):
        assert main(["trace", "show"]) == 2
        assert "profile name" in capsys.readouterr().err

    def test_trace_eval_rejects_stray_profile_operand(self, capsys):
        assert main(["trace", "eval", "india"]) == 2
        assert "takes no profile argument" in capsys.readouterr().err

    def test_trace_eval_rejects_short_horizon(self, capsys):
        assert main(["trace", "eval", "--hours", "24"]) == 2
        assert "48" in capsys.readouterr().err

    def test_trace_eval(self, capsys):
        assert main(["trace", "eval", "--hours", "48"]) == 0
        out = capsys.readouterr().out
        assert "batched" in out
        assert "scenarios" in out

    def test_trace_eval_markdown(self, capsys):
        assert main(["trace", "eval", "--hours", "48", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| trace | workload | policy |" in out


class TestRegistryMetadata:
    def test_titles_match_results(self):
        for experiment_id in ("fig05", "ext04"):
            assert (
                experiment_title(experiment_id)
                == run_experiment(experiment_id).title
            )

    def test_titles_cover_the_catalogue(self):
        titles = experiment_titles()
        assert list(titles) == list(EXPERIMENT_IDS)
        assert all(titles.values())

    def test_non_positive_worker_counts_rejected(self):
        from repro.errors import ExperimentError
        from repro.experiments import run_all

        for jobs in (0, -1):
            with pytest.raises(ExperimentError):
                run_all(parallel=True, max_workers=jobs)

    def test_result_cache_hits_and_isolation(self):
        from repro.experiments import clear_result_cache

        clear_result_cache()
        first = run_experiment("tab01", cache=True)
        calls = {"count": 0}
        original = experiment_registry.get_experiment

        def counting(experiment_id):
            calls["count"] += 1
            return original(experiment_id)

        experiment_registry.get_experiment = counting
        try:
            second = run_experiment("tab01", cache=True)
        finally:
            experiment_registry.get_experiment = original
        assert calls["count"] == 0  # served from cache
        assert second.title == first.title
        # Mutating a served copy must not poison the cache.
        second.tables.clear()
        third = run_experiment("tab01", cache=True)
        assert third.tables
        clear_result_cache()


class TestMarkdown:
    def test_markdown_table_shape(self):
        table = Table.from_records([{"a": 1.5, "b": True}])
        text = markdown_table(table)
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "yes" in lines[2]

    def test_markdown_report_sections(self):
        results = {"fig05": run_experiment("fig05")}
        text = markdown_report(results)
        assert text.startswith("## fig05")
        assert "all checks pass" in text
        assert "| check |" in text


class TestFleetReporting:
    @pytest.fixture(scope="class")
    def reports(self):
        return simulate_fleet(facebook_like_parameters())

    def test_inventory_totals_match_report(self, reports):
        final = reports[-1]
        inventory = fleet_year_to_inventory("sim", final)
        assert inventory.scope3_total().grams == pytest.approx(final.capex.grams)
        assert inventory.capex_fraction(market_based=True) == pytest.approx(
            final.capex_fraction_market
        )

    def test_series_covers_all_years(self, reports):
        series = fleet_to_report_series("sim", reports)
        assert series.years == [report.year for report in reports]

    def test_series_scope_table_renders(self, reports):
        series = fleet_to_report_series("sim", reports)
        table = series.scope_table()
        assert table.num_rows == len(reports)

    def test_simulated_operator_shows_paper_pattern(self, reports):
        """The simulated series reproduces Figure 11's divergence:
        location-based Scope 2 rises, market-based falls."""
        series = fleet_to_report_series("sim", reports)
        table = series.scope_table()
        location = table.column("scope2_location_t")
        market = table.column("scope2_market_t")
        assert location[-1] > location[0]
        assert market[-1] < market[0]

    def test_empty_series_rejected(self):
        with pytest.raises(AccountingError):
            fleet_to_report_series("sim", [])
