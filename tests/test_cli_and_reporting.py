"""Tests for the CLI, markdown report, and fleet-to-GHG reporting."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datacenter.fleet import simulate_fleet
from repro.datacenter.reporting import (
    fleet_to_report_series,
    fleet_year_to_inventory,
)
from repro.errors import AccountingError
from repro.experiments import run_experiment
from repro.experiments.markdown import markdown_report, markdown_table
from repro.experiments.ext04_fleet import facebook_like_parameters
from repro.tabular import Table


class TestCLI:
    def test_parser_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "tab04" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "tab02"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out

    def test_run_all(self, capsys):
        assert main(["run", "all"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") >= 20

    def test_checks_command(self, capsys):
        assert main(["checks"]) == 0
        out = capsys.readouterr().out
        assert "0 failing" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "error" in capsys.readouterr().err


class TestMarkdown:
    def test_markdown_table_shape(self):
        table = Table.from_records([{"a": 1.5, "b": True}])
        text = markdown_table(table)
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "yes" in lines[2]

    def test_markdown_report_sections(self):
        results = {"fig05": run_experiment("fig05")}
        text = markdown_report(results)
        assert text.startswith("## fig05")
        assert "all checks pass" in text
        assert "| check |" in text


class TestFleetReporting:
    @pytest.fixture(scope="class")
    def reports(self):
        return simulate_fleet(facebook_like_parameters())

    def test_inventory_totals_match_report(self, reports):
        final = reports[-1]
        inventory = fleet_year_to_inventory("sim", final)
        assert inventory.scope3_total().grams == pytest.approx(final.capex.grams)
        assert inventory.capex_fraction(market_based=True) == pytest.approx(
            final.capex_fraction_market
        )

    def test_series_covers_all_years(self, reports):
        series = fleet_to_report_series("sim", reports)
        assert series.years == [report.year for report in reports]

    def test_series_scope_table_renders(self, reports):
        series = fleet_to_report_series("sim", reports)
        table = series.scope_table()
        assert table.num_rows == len(reports)

    def test_simulated_operator_shows_paper_pattern(self, reports):
        """The simulated series reproduces Figure 11's divergence:
        location-based Scope 2 rises, market-based falls."""
        series = fleet_to_report_series("sim", reports)
        table = series.scope_table()
        location = table.column("scope2_location_t")
        market = table.column("scope2_market_t")
        assert location[-1] > location[0]
        assert market[-1] < market[0]

    def test_empty_series_rejected(self):
        with pytest.raises(AccountingError):
            fleet_to_report_series("sim", [])
