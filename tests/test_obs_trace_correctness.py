"""Trace correctness: the fault harness as an observability oracle.

Fault rules key on ``(shard start, attempt)``, so
:func:`repro.exec.predict_outcomes` can compute in advance the exact
sequence of chunk-attempt outcomes a run will record — and a traced,
fault-injected run must then emit exactly those ``attempt`` events.
These tests pin that agreement for the inline path and every pooled
fault kind, plus the other hard invariant of :mod:`repro.obs`:
tracing must never perturb results (traced == untraced, bitwise).
"""

from __future__ import annotations

import pytest

from repro.exec import (
    FaultRule,
    FaultSpec,
    ShardPlan,
    install_faults,
    predict_outcomes,
    run_sharded,
)
from repro.obs import TraceRecorder, install_recorder
from repro.scenarios import ScenarioGrid, facebook_like_fleet, run_sweep, sweep_fleet
from repro.uncertainty import sweep_fleet_uncertain


def _square_chunk(payload, start, stop):
    """Module-level chunk kernel: squares of ``payload[start:stop]``."""
    return [value * value for value in payload[start:stop]]


_PAYLOAD = list(range(20))
_PLAN = ShardPlan(num_scenarios=20, chunk_size=5)
_EXPECTED = [value * value for value in _PAYLOAD]
_STARTS = [shard.start for shard in _PLAN.shards()]


def _flat(chunks):
    """Concatenate list chunks."""
    return [value for chunk in chunks for value in chunk]


def _attempt_sequences(recorder):
    """``{stream: [outcome, ...]}`` from a recorder's attempt events."""
    sequences: dict[int, list[str]] = {}
    for line in recorder.events:
        if line.get("kind") == "attempt":
            sequences.setdefault(line["stream"], []).append(line["outcome"])
    return sequences


def _run_traced(spec, *, jobs=1, retries=2, timeout=None):
    recorder = TraceRecorder()
    with install_recorder(recorder), install_faults(spec):
        result = run_sharded(
            _square_chunk,
            _PAYLOAD,
            _PLAN,
            jobs=jobs,
            retries=retries,
            timeout=timeout,
            combine=_flat,
        )
    assert result == _EXPECTED
    return recorder


class TestOraclePredictions:
    def test_inline_raise_sequence_is_exact(self):
        spec = FaultSpec(
            rules=(
                FaultRule(kind="raise", starts=(0,), attempts=(1, 2)),
                FaultRule(kind="raise", starts=(10,), attempts=(1,)),
            )
        )
        recorder = _run_traced(spec, jobs=1, retries=3)
        predicted = predict_outcomes(
            spec, _STARTS, max_attempts=4, pooled=False
        )
        assert _attempt_sequences(recorder) == predicted
        assert predicted[0] == ["error", "error", "ok"]
        assert predicted[10] == ["error", "ok"]
        assert predicted[5] == ["ok"]

    def test_inline_crash_degrades_to_error(self):
        # Inline chunks cannot crash a worker process; the injected
        # crash degrades to a raise, and the oracle predicts "error".
        spec = FaultSpec(
            rules=(FaultRule(kind="crash", starts=(5,), attempts=(1,)),)
        )
        recorder = _run_traced(spec, jobs=1, retries=2)
        predicted = predict_outcomes(
            spec, _STARTS, max_attempts=3, pooled=False
        )
        assert _attempt_sequences(recorder) == predicted
        assert predicted[5] == ["error", "ok"]

    def test_inline_hang_is_ok_without_timeout(self):
        # An inline run cannot arm a timeout, so a hang rule (with a
        # tiny sleep) just delays the chunk; the oracle predicts "ok".
        spec = FaultSpec(
            rules=(
                FaultRule(
                    kind="hang", starts=(0,), attempts=(1,), seconds=0.01
                ),
            )
        )
        recorder = _run_traced(spec, jobs=1, retries=2)
        predicted = predict_outcomes(
            spec, _STARTS, max_attempts=3, pooled=False, timeout_armed=False
        )
        assert _attempt_sequences(recorder) == predicted
        assert predicted[0] == ["ok"]

    def test_pooled_raise_and_corrupt_sequences_are_exact(self):
        spec = FaultSpec(
            rules=(
                FaultRule(kind="raise", starts=(0,), attempts=(1, 2)),
                FaultRule(kind="corrupt", starts=(10,), attempts=(1,)),
            )
        )
        recorder = _run_traced(spec, jobs=2, retries=3)
        predicted = predict_outcomes(
            spec, _STARTS, max_attempts=4, pooled=True
        )
        assert _attempt_sequences(recorder) == predicted
        assert predicted[10] == ["corrupt", "ok"]

    def test_pooled_crash_predicts_the_crashed_chunk(self):
        # A pooled crash takes the shared pool down, so bystander
        # chunks may be co-charged; the oracle is exact only for the
        # crashed chunk's own sequence, and every chunk must still
        # recover to a final "ok".
        spec = FaultSpec(
            rules=(FaultRule(kind="crash", starts=(5,), attempts=(1,)),)
        )
        recorder = _run_traced(spec, jobs=2, retries=3)
        predicted = predict_outcomes(
            spec, _STARTS, max_attempts=4, pooled=True
        )
        assert predicted[5] == ["crash", "ok"]
        sequences = _attempt_sequences(recorder)
        assert sequences[5][0] == "crash"
        for start in _STARTS:
            assert sequences[start][-1] == "ok"
            for outcome in sequences[start][:-1]:
                assert outcome == "crash"

    def test_pooled_hang_times_out_as_predicted(self):
        spec = FaultSpec(
            rules=(
                FaultRule(kind="hang", starts=(0,), attempts=(1,), seconds=30.0),
            )
        )
        recorder = _run_traced(spec, jobs=2, retries=2, timeout=0.25)
        predicted = predict_outcomes(
            spec, _STARTS, max_attempts=3, pooled=True, timeout_armed=True
        )
        assert predicted[0] == ["timeout", "ok"]
        sequences = _attempt_sequences(recorder)
        assert sequences[0] == predicted[0]
        # A hang stalls only its own worker; the other chunks run clean.
        for start in _STARTS[1:]:
            assert sequences[start] == ["ok"]

    def test_clean_run_predicts_all_ok(self):
        recorder = _run_traced(None, jobs=1, retries=2)
        predicted = predict_outcomes(
            None, _STARTS, max_attempts=3, pooled=False
        )
        assert predicted == {start: ["ok"] for start in _STARTS}
        assert _attempt_sequences(recorder) == predicted

    def test_retry_events_accompany_failed_attempts(self):
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(0,), attempts=(1, 2)),)
        )
        recorder = _run_traced(spec, jobs=1, retries=3)
        retries = [
            line for line in recorder.events if line.get("kind") == "retry"
        ]
        assert [line["attempt"] for line in retries] == [1, 2]
        assert all(line["stream"] == 0 for line in retries)
        assert all(line["delay_s"] >= 0.0 for line in retries)

    def test_rejects_nonpositive_max_attempts(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            predict_outcomes(None, _STARTS, max_attempts=0)


_GRID = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.1, 0.2, 0.3],
        "server.lifetime_years": [3.0, 4.0, 6.0],
        "utilization": [0.45, 0.65],
    }
)


class TestTracingIsInvisibleToResults:
    """The tier-1 pin: tracing on == tracing off, bit for bit."""

    def test_point_sweep_bit_identical(self, tmp_path):
        base = facebook_like_fleet()
        plain = sweep_fleet(base, _GRID, chunk_size=5)
        recorder = TraceRecorder(tmp_path / "trace.jsonl")
        with install_recorder(recorder):
            traced = sweep_fleet(base, _GRID, chunk_size=5)
        recorder.close()
        assert traced == plain
        assert len(recorder.events) > 0  # the trace actually recorded

    def test_uncertain_sweep_bit_identical(self, tmp_path):
        base = facebook_like_fleet()
        plain = sweep_fleet_uncertain(
            base, _GRID, draws=32, seed=7, chunk_size=5
        )
        recorder = TraceRecorder(tmp_path / "trace.jsonl")
        with install_recorder(recorder):
            traced = sweep_fleet_uncertain(
                base, _GRID, draws=32, seed=7, chunk_size=5
            )
        recorder.close()
        assert traced.axes == plain.axes
        assert set(traced.samples) == set(plain.samples)
        for name in traced.samples:
            assert (traced.samples[name] == plain.samples[name]).all()

    def test_faulted_pooled_sweep_bit_identical(self):
        plain = run_sharded(
            _square_chunk, _PAYLOAD, _PLAN, jobs=2, combine=_flat
        )
        spec = FaultSpec(
            rules=(
                FaultRule(kind="raise", starts=(0,), attempts=(1,)),
                FaultRule(kind="corrupt", starts=(10,), attempts=(1,)),
            )
        )
        recorder = TraceRecorder()
        with install_recorder(recorder), install_faults(spec):
            traced = run_sharded(
                _square_chunk,
                _PAYLOAD,
                _PLAN,
                jobs=2,
                retries=2,
                combine=_flat,
            )
        assert traced == plain == _EXPECTED

    def test_registered_sweep_bit_identical_via_runner(self):
        plain = run_sweep("fleet_growth_lifetime")
        recorder = TraceRecorder()
        with install_recorder(recorder):
            traced = run_sweep("fleet_growth_lifetime")
        assert traced == plain
        spans = [
            line
            for line in recorder.events
            if line.get("type") == "span" and line["kind"] == "sweep"
        ]
        assert spans and spans[0]["name"] == "fleet_growth_lifetime"
        assert spans[0]["rows"] == plain.num_rows


class TestWorkerTelemetry:
    def test_pooled_run_ships_worker_events(self):
        recorder = _run_traced(None, jobs=2, retries=1)
        workers = [
            line
            for line in recorder.events
            if line.get("kind") == "chunk_worker"
        ]
        assert len(workers) == len(_STARTS)
        for line in workers:
            assert line["proc"] == "worker"
            assert line["dur_s"] >= 0.0
            assert line["rows"] == 5
        assert recorder.summary()["histograms"]["chunk.duration"]["count"] == len(
            _STARTS
        )

    def test_inline_run_times_chunks_without_worker_events(self):
        recorder = _run_traced(None, jobs=1, retries=1)
        kinds = [line["kind"] for line in recorder.events]
        assert "chunk_worker" not in kinds
        # Inline attempts carry their own duration instead.
        attempts = [
            line for line in recorder.events if line["kind"] == "attempt"
        ]
        assert all("dur_s" in line for line in attempts)
        assert recorder.summary()["histograms"]["chunk.duration"]["count"] == len(
            _STARTS
        )
