"""Tests for carbon-intensity models: sources, grids, mixes."""

from __future__ import annotations

import pytest

from repro.core.intensity import (
    EnergySource,
    GridMix,
    GridRegion,
    market_based_intensity,
    renewable_scaling_factor,
)
from repro.errors import DataValidationError, UnitError
from repro.units import CarbonIntensity, Energy


def _source(name: str, g: float, renewable: bool = False) -> EnergySource:
    return EnergySource(name, CarbonIntensity.g_per_kwh(g), renewable=renewable)


class TestEnergySource:
    def test_carbon_for(self):
        coal = _source("coal", 820.0)
        assert coal.carbon_for(Energy.kwh(1.0)).grams == pytest.approx(820.0)

    def test_requires_name(self):
        with pytest.raises(DataValidationError):
            _source("", 100.0)

    def test_negative_payback_rejected(self):
        with pytest.raises(DataValidationError):
            EnergySource("x", CarbonIntensity.g_per_kwh(10.0), payback_months=-1.0)


class TestGridRegion:
    def test_carbon_for(self):
        grid = GridRegion("us", CarbonIntensity.g_per_kwh(380.0))
        assert grid.carbon_for(Energy.kwh(10.0)).grams == pytest.approx(3800.0)

    def test_requires_name(self):
        with pytest.raises(DataValidationError):
            GridRegion("", CarbonIntensity.g_per_kwh(380.0))


class TestGridMix:
    def test_single_source_mix(self):
        wind = _source("wind", 11.0, renewable=True)
        assert GridMix.single(wind).intensity.grams_per_kwh == pytest.approx(11.0)

    def test_weighted_average(self):
        coal = _source("coal", 800.0)
        wind = _source("wind", 10.0, renewable=True)
        mix = GridMix({coal: 0.75, wind: 0.25})
        assert mix.intensity.grams_per_kwh == pytest.approx(0.75 * 800 + 0.25 * 10)

    def test_shares_must_sum_to_one(self):
        coal = _source("coal", 800.0)
        with pytest.raises(DataValidationError):
            GridMix({coal: 0.5})

    def test_negative_share_rejected(self):
        coal = _source("coal", 800.0)
        wind = _source("wind", 10.0)
        with pytest.raises(DataValidationError):
            GridMix({coal: 1.5, wind: -0.5})

    def test_empty_mix_rejected(self):
        with pytest.raises(DataValidationError):
            GridMix({})

    def test_renewable_share(self):
        coal = _source("coal", 800.0)
        wind = _source("wind", 10.0, renewable=True)
        mix = GridMix({coal: 0.6, wind: 0.4})
        assert mix.renewable_share == pytest.approx(0.4)

    def test_shift_toward_reduces_intensity(self):
        coal = _source("coal", 800.0)
        wind = _source("wind", 10.0, renewable=True)
        mix = GridMix.single(coal)
        shifted = mix.shift_toward(wind, 0.5)
        assert shifted.intensity.grams_per_kwh == pytest.approx(405.0)
        assert shifted.renewable_share == pytest.approx(0.5)

    def test_shift_toward_full_replacement(self):
        coal = _source("coal", 800.0)
        wind = _source("wind", 10.0, renewable=True)
        shifted = GridMix.single(coal).shift_toward(wind, 1.0)
        assert shifted.intensity.grams_per_kwh == pytest.approx(10.0)

    def test_shift_preserves_normalization(self):
        coal = _source("coal", 800.0)
        gas = _source("gas", 490.0)
        wind = _source("wind", 10.0, renewable=True)
        mix = GridMix({coal: 0.5, gas: 0.5}).shift_toward(wind, 0.3)
        assert sum(mix.shares.values()) == pytest.approx(1.0)

    def test_shift_share_out_of_range(self):
        coal = _source("coal", 800.0)
        wind = _source("wind", 10.0, renewable=True)
        with pytest.raises(UnitError):
            GridMix.single(coal).shift_toward(wind, 1.5)


class TestMarketBasedIntensity:
    def test_zero_coverage_equals_location(self):
        location = CarbonIntensity.g_per_kwh(380.0)
        assert market_based_intensity(location, 0.0).grams_per_kwh == 380.0

    def test_full_coverage_zero_claim(self):
        location = CarbonIntensity.g_per_kwh(380.0)
        assert market_based_intensity(location, 1.0).grams_per_kwh == 0.0

    def test_partial_coverage_with_contracted_intensity(self):
        location = CarbonIntensity.g_per_kwh(380.0)
        wind = CarbonIntensity.g_per_kwh(11.0)
        result = market_based_intensity(location, 0.5, renewable=wind)
        assert result.grams_per_kwh == pytest.approx(0.5 * 380 + 0.5 * 11)

    def test_coverage_out_of_range(self):
        with pytest.raises(UnitError):
            market_based_intensity(CarbonIntensity.g_per_kwh(380.0), 1.2)

    def test_monotone_in_coverage(self):
        location = CarbonIntensity.g_per_kwh(380.0)
        previous = float("inf")
        for coverage in (0.0, 0.25, 0.5, 0.75, 1.0):
            value = market_based_intensity(location, coverage).grams_per_kwh
            assert value <= previous
            previous = value


class TestRenewableScaling:
    def test_divides_intensity(self):
        base = CarbonIntensity.g_per_kwh(640.0)
        assert renewable_scaling_factor(base, 64.0).grams_per_kwh == 10.0

    def test_identity_factor(self):
        base = CarbonIntensity.g_per_kwh(100.0)
        assert renewable_scaling_factor(base, 1.0).grams_per_kwh == 100.0

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(UnitError):
            renewable_scaling_factor(CarbonIntensity.g_per_kwh(100.0), 0.0)
