"""Property tests for the uncertainty engine's quantile invariants.

Three families of invariant, per the scenario-engine discipline:
quantiles must be monotone in the percentile, zero-variance
distributions must collapse the bands onto the deterministic sweep
*exactly*, and the per-scenario seeding must make draws reproducible
and independent of how a sweep is partitioned (the property that makes
``--parallel`` evaluation and scenario subsetting safe).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.uncertainty import (
    Fixed,
    LogNormal,
    Mixture,
    Normal,
    Triangular,
    Uniform,
)
from repro.scenarios import ScenarioGrid, facebook_like_fleet, sweep_fleet
from repro.uncertainty import (
    UncertainResult,
    build_draw_matrix,
    quantile_column,
    sweep_fleet_uncertain,
)
from repro.tabular import Table

_BASE = facebook_like_fleet()


def _distributions(draw):
    """One hypothesis-chosen distribution with a bounded support."""
    kind = draw(st.sampled_from(["normal", "uniform", "triangular",
                                 "lognormal", "mixture", "fixed"]))
    low = draw(st.floats(min_value=0.1, max_value=5.0))
    spread = draw(st.floats(min_value=0.0, max_value=2.0))
    if kind == "normal":
        return Normal(low, spread)
    if kind == "uniform":
        return Uniform(low, low + spread)
    if kind == "triangular":
        mode = low + spread / 2.0
        return Triangular(low, mode, low + spread)
    if kind == "lognormal":
        return LogNormal.from_median(low, min(spread, 0.8))
    if kind == "mixture":
        return Mixture.discrete({low: 0.25, low + spread: 0.75})
    return Fixed(low)


distribution_strategy = st.composite(_distributions)()


class TestQuantileInvariants:
    @given(dist=distribution_strategy, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_quantiles_monotone_in_percentile(self, dist, seed):
        rng = np.random.default_rng(seed)
        samples = dist.sample(rng, 128)
        result = UncertainResult(
            axes=Table({"scenario": [0]}),
            samples={"metric": samples.reshape(1, -1)},
            draws=128,
            seed=seed,
        )
        table = result.quantile_table(quantiles=(5.0, 25.0, 50.0, 75.0, 95.0))
        values = [
            table.column(f"metric_{quantile_column(q)}")[0]
            for q in (5.0, 25.0, 50.0, 75.0, 95.0)
        ]
        assert values == sorted(values)
        low, median, high = result.band("metric")
        assert low[0] <= median[0] <= high[0]

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_band_respects_sample_support(self, seed):
        rng = np.random.default_rng(seed)
        samples = Mixture.discrete({2.0: 1.0, 4.0: 2.0}).sample(rng, 256)
        assert set(np.unique(samples)) <= {2.0, 4.0}


class TestZeroVarianceCollapse:
    @pytest.mark.parametrize(
        "lifetime",
        [Fixed(3.0), Triangular(3.0, 3.0, 3.0), Normal(3.0, 0.0),
         Mixture.discrete({3.0: 1.0})],
    )
    def test_bands_collapse_to_the_deterministic_sweep(self, lifetime):
        grid_axes = {
            "annual_growth": [0.0, 0.25],
            "server.lifetime_years": [lifetime],
        }
        uncertain = sweep_fleet_uncertain(
            _BASE, ScenarioGrid(**grid_axes), draws=16, seed=0
        )
        deterministic = sweep_fleet(
            _BASE,
            ScenarioGrid(
                **{"annual_growth": [0.0, 0.25],
                   "server.lifetime_years": [3.0]}
            ),
        )
        for metric in ("capex_kt", "opex_market_kt", "energy_gwh"):
            low, median, high = uncertain.band(metric)
            expected = np.asarray(deterministic.column(metric), dtype=float)
            assert list(low) == list(expected)
            assert list(median) == list(expected)
            assert list(high) == list(expected)
            means = uncertain.quantile_table().column(f"{metric}_mean")
            assert list(means) == list(expected)


class TestSeedDiscipline:
    def test_draws_reproducible_across_runs(self):
        grid = ScenarioGrid(
            **{"annual_growth": [0.0, 0.5],
               "utilization": [Normal(0.5, 0.1)]}
        )
        a = sweep_fleet_uncertain(_BASE, grid, draws=32, seed=11)
        b = sweep_fleet_uncertain(_BASE, grid, draws=32, seed=11)
        for metric in a.metric_names:
            assert np.array_equal(a.samples_for(metric), b.samples_for(metric))

    def test_scenario_draws_independent_of_sweep_partitioning(self):
        # The property behind parallel/subset safety: a scenario's
        # draws depend only on (its record, draws, seed) — never on
        # which other scenarios ride in the same sweep.
        records = [
            {"utilization": Normal(0.4, 0.05), "annual_growth": 0.1},
            {"utilization": Normal(0.6, 0.05), "annual_growth": 0.3},
            {"utilization": Uniform(0.2, 0.8), "annual_growth": 0.5},
        ]
        full = build_draw_matrix(records, draws=64, seed=5)
        for index, record in enumerate(records):
            alone = build_draw_matrix([record], draws=64, seed=5)
            for name in full.names:
                assert np.array_equal(
                    full.values[name][index], alone.values[name][0]
                )

    def test_identical_distributions_share_draws_across_scenarios(self):
        # Common random numbers: scenario comparisons are paired, so
        # sampling noise cancels out of cross-scenario deltas.
        grid = ScenarioGrid(
            **{"annual_growth": [0.0, 0.25, 0.5],
               "utilization": [Normal(0.5, 0.1)]}
        )
        matrix = build_draw_matrix(grid.scenarios(), draws=32, seed=2)
        draws = matrix.values["utilization"]
        assert np.array_equal(draws[0], draws[1])
        assert np.array_equal(draws[1], draws[2])
