"""Regression tests for subtle paths found during development."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.grids import US_GRID
from repro.datacenter.facility import Facility
from repro.datacenter.fleet import FleetParameters, simulate_fleet
from repro.datacenter.scheduler import BatchJob, schedule_carbon_aware
from repro.datacenter.server import WEB_SERVER
from repro.core.intensity import market_based_intensity
from repro.tabular import Table
from repro.units import Carbon, CarbonIntensity


class TestMultiKeyJoin:
    def test_join_on_two_columns(self):
        left = Table.from_records(
            [
                {"vendor": "apple", "year": 2019, "total": 74.0},
                {"vendor": "apple", "year": 2018, "total": 67.0},
                {"vendor": "google", "year": 2019, "total": 62.0},
            ]
        )
        right = Table.from_records(
            [
                {"vendor": "apple", "year": 2019, "ships_m": 150.0},
                {"vendor": "google", "year": 2019, "ships_m": 7.0},
            ]
        )
        joined = left.join(right, on=["vendor", "year"])
        assert joined.num_rows == 2
        apple = joined.where(lambda r: r["vendor"] == "apple").row(0)
        assert apple["total"] == 74.0 and apple["ships_m"] == 150.0

    def test_partial_key_matches_do_not_join(self):
        left = Table.from_records([{"a": 1, "b": 1}])
        right = Table.from_records([{"a": 1, "b": 2, "v": "x"}])
        assert left.join(right, on=["a", "b"]).num_rows == 0


class TestSecondRefreshWave:
    def test_cohorts_refresh_twice_over_long_horizons(self):
        """With a 4-year server life, a 10-year run must repurchase the
        initial cohort around years 4 and 8."""
        params = FleetParameters(
            server=WEB_SERVER,
            facility=Facility(
                "dc", pue=1.1, construction_carbon=Carbon.zero()
            ),
            location_intensity=US_GRID.intensity,
            initial_servers=10_000,
            annual_growth=0.0,
            years=10,
        )
        reports = simulate_fleet(params)
        added = [report.servers_added for report in reports]
        refresh_years = [
            index for index, count in enumerate(added) if index > 0 and count > 0
        ]
        assert 4 in refresh_years
        assert 8 in refresh_years
        # Fleet size never changes with zero growth.
        assert all(report.servers == 10_000 for report in reports)


class TestSchedulerHorizonEdges:
    def test_job_ending_exactly_at_horizon(self):
        grid = np.full(24, 100.0)
        job = BatchJob("edge", duration_hours=4, power_kw=50.0, arrival_hour=20)
        result = schedule_carbon_aware([job], grid, capacity_kw=100.0)
        assert result.placement_for("edge").start_hour == 20

    def test_deadline_beyond_horizon_is_clamped(self):
        grid = np.full(24, 100.0)
        job = BatchJob(
            "late", duration_hours=2, power_kw=50.0, arrival_hour=0,
            deadline_hour=100,
        )
        result = schedule_carbon_aware([job], grid, capacity_kw=100.0)
        placement = result.placement_for("late")
        assert placement.start_hour + 2 <= 24


class TestMarketBasedEdgeCases:
    def test_contract_dirtier_than_location_raises_intensity(self):
        """A biomass PPA on an Icelandic grid is worse than doing
        nothing — the formula must not hide that."""
        location = CarbonIntensity.g_per_kwh(28.0)
        biomass = CarbonIntensity.g_per_kwh(230.0)
        blended = market_based_intensity(location, 0.5, renewable=biomass)
        assert blended.grams_per_kwh > location.grams_per_kwh

    def test_zero_location_grid(self):
        blended = market_based_intensity(
            CarbonIntensity.g_per_kwh(0.0), 0.5,
            renewable=CarbonIntensity.g_per_kwh(10.0),
        )
        assert blended.grams_per_kwh == pytest.approx(5.0)


class TestChartDegenerateInputs:
    def test_line_chart_single_point_series(self):
        from repro.report.charts import line_chart

        chart = line_chart([5.0], {"s": [3.0]})
        assert "A" in chart

    def test_bar_chart_all_zero_values(self):
        from repro.report.charts import bar_chart

        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert chart.count("|") == 4
