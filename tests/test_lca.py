"""Tests for the product LCA engine."""

from __future__ import annotations

import pytest

from repro.core.lca import (
    CAPEX_STAGES,
    DeviceClass,
    LifeCycleStage,
    PowerClass,
    ProductLCA,
    power_class_for,
    use_phase_carbon,
)
from repro.errors import DataValidationError
from repro.units import Carbon, CarbonIntensity, Energy


def _lca(**overrides) -> ProductLCA:
    params = dict(
        product="test_phone",
        vendor="acme",
        year=2019,
        device_class=DeviceClass.PHONE,
        total=Carbon.kg(100.0),
        stage_fractions={
            LifeCycleStage.PRODUCTION: 0.70,
            LifeCycleStage.TRANSPORT: 0.05,
            LifeCycleStage.USE: 0.24,
            LifeCycleStage.END_OF_LIFE: 0.01,
        },
    )
    params.update(overrides)
    return ProductLCA(**params)


class TestValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(DataValidationError):
            _lca(
                stage_fractions={
                    LifeCycleStage.PRODUCTION: 0.5,
                    LifeCycleStage.TRANSPORT: 0.1,
                    LifeCycleStage.USE: 0.1,
                    LifeCycleStage.END_OF_LIFE: 0.1,
                }
            )

    def test_all_stages_required(self):
        with pytest.raises(DataValidationError):
            _lca(
                stage_fractions={
                    LifeCycleStage.PRODUCTION: 0.8,
                    LifeCycleStage.USE: 0.2,
                }
            )

    def test_fraction_range_enforced(self):
        with pytest.raises(DataValidationError):
            _lca(
                stage_fractions={
                    LifeCycleStage.PRODUCTION: 1.2,
                    LifeCycleStage.TRANSPORT: -0.2,
                    LifeCycleStage.USE: 0.0,
                    LifeCycleStage.END_OF_LIFE: 0.0,
                }
            )

    def test_positive_total_required(self):
        with pytest.raises(DataValidationError):
            _lca(total=Carbon.zero())

    def test_positive_lifetime_required(self):
        with pytest.raises(DataValidationError):
            _lca(lifetime_years=0.0)

    def test_component_fractions_must_not_exceed_one(self):
        with pytest.raises(DataValidationError):
            _lca(component_fractions={"ics": 0.7, "display": 0.5})

    def test_product_name_required(self):
        with pytest.raises(DataValidationError):
            _lca(product="")


class TestDecomposition:
    def test_stage_carbon(self):
        lca = _lca()
        assert lca.production_carbon.kilograms == pytest.approx(70.0)
        assert lca.use_carbon.kilograms == pytest.approx(24.0)

    def test_stage_carbons_sum_to_total(self):
        lca = _lca()
        total = sum(lca.stage_carbon(stage).kilograms for stage in LifeCycleStage)
        assert total == pytest.approx(lca.total.kilograms)

    def test_capex_is_everything_but_use(self):
        lca = _lca()
        assert lca.capex_fraction == pytest.approx(0.76)
        assert lca.opex_fraction == pytest.approx(0.24)
        assert lca.capex_fraction + lca.opex_fraction == pytest.approx(1.0)

    def test_capex_stages_constant(self):
        assert LifeCycleStage.USE not in CAPEX_STAGES
        assert len(CAPEX_STAGES) == 3

    def test_manufacturing_fraction_is_production_only(self):
        lca = _lca()
        assert lca.manufacturing_fraction == pytest.approx(0.70)
        assert lca.manufacturing_fraction < lca.capex_fraction


class TestComponents:
    def test_component_carbon_is_of_production(self):
        lca = _lca(component_fractions={"integrated_circuits": 0.5})
        assert lca.component_carbon("integrated_circuits").kilograms == pytest.approx(
            35.0
        )

    def test_unknown_component_raises(self):
        lca = _lca()
        with pytest.raises(DataValidationError):
            lca.component_carbon("display")


class TestAmortizationAndClasses:
    def test_amortized_per_year(self):
        lca = _lca(lifetime_years=4.0)
        assert lca.amortized_per_year().kilograms == pytest.approx(25.0)

    def test_power_class_mapping(self):
        assert power_class_for(DeviceClass.PHONE) is PowerClass.BATTERY_POWERED
        assert power_class_for(DeviceClass.LAPTOP) is PowerClass.BATTERY_POWERED
        assert power_class_for(DeviceClass.DESKTOP) is PowerClass.ALWAYS_CONNECTED
        assert (
            power_class_for(DeviceClass.GAME_CONSOLE) is PowerClass.ALWAYS_CONNECTED
        )

    def test_lca_exposes_power_class(self):
        assert _lca().power_class is PowerClass.BATTERY_POWERED


class TestFromStageCarbon:
    def test_builds_fractions_from_absolutes(self):
        lca = ProductLCA.from_stage_carbon(
            "x", "acme", 2020, DeviceClass.TABLET,
            stages={
                LifeCycleStage.PRODUCTION: Carbon.kg(75.0),
                LifeCycleStage.TRANSPORT: Carbon.kg(5.0),
                LifeCycleStage.USE: Carbon.kg(19.0),
                LifeCycleStage.END_OF_LIFE: Carbon.kg(1.0),
            },
        )
        assert lca.total.kilograms == pytest.approx(100.0)
        assert lca.manufacturing_fraction == pytest.approx(0.75)

    def test_missing_stage_raises(self):
        with pytest.raises(DataValidationError):
            ProductLCA.from_stage_carbon(
                "x", "acme", 2020, DeviceClass.TABLET,
                stages={LifeCycleStage.PRODUCTION: Carbon.kg(75.0)},
            )


class TestUsePhaseCarbon:
    def test_matches_manual_computation(self):
        carbon = use_phase_carbon(
            Energy.kwh(10.0), CarbonIntensity.g_per_kwh(380.0), lifetime_years=3.0
        )
        assert carbon.grams == pytest.approx(10 * 380 * 3)

    def test_lifetime_must_be_positive(self):
        with pytest.raises(DataValidationError):
            use_phase_carbon(Energy.kwh(1.0), CarbonIntensity.g_per_kwh(1.0), 0.0)
