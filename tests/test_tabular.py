"""Unit tests for the columnar Table substrate."""

from __future__ import annotations

import pytest

from repro.errors import TableError
from repro.tabular import Table


@pytest.fixture
def devices() -> Table:
    return Table.from_records(
        [
            {"vendor": "apple", "product": "iphone_11", "kg": 60.0},
            {"vendor": "google", "product": "pixel_3a", "kg": 45.0},
            {"vendor": "apple", "product": "iphone_11_pro", "kg": 66.0},
            {"vendor": "huawei", "product": "honor_5c", "kg": 19.0},
        ]
    )


class TestConstruction:
    def test_column_lengths_must_match(self):
        with pytest.raises(TableError):
            Table({"a": [1, 2], "b": [1]})

    def test_needs_at_least_one_column(self):
        with pytest.raises(TableError):
            Table({})

    def test_column_names_must_be_strings(self):
        with pytest.raises(TableError):
            Table({1: [1]})  # type: ignore[dict-item]

    def test_from_records_infers_column_order(self, devices):
        assert devices.column_names == ["vendor", "product", "kg"]

    def test_from_records_missing_key_raises(self):
        with pytest.raises(TableError):
            Table.from_records([{"a": 1}, {"b": 2}])

    def test_from_records_extra_key_raises(self):
        with pytest.raises(TableError):
            Table.from_records([{"a": 1}, {"a": 2, "b": 3}])

    def test_from_records_explicit_columns_allow_extras(self):
        table = Table.from_records(
            [{"a": 1, "b": 2}], columns=["a"]
        )
        assert table.column_names == ["a"]

    def test_empty_records_need_columns(self):
        with pytest.raises(TableError):
            Table.from_records([])

    def test_empty_with_columns(self):
        table = Table.from_records([], columns=["a", "b"])
        assert table.num_rows == 0

    def test_input_columns_are_copied(self):
        source = [1, 2, 3]
        table = Table({"a": source})
        source.append(4)
        assert table.num_rows == 3


class TestAccess:
    def test_len_and_num_rows(self, devices):
        assert len(devices) == devices.num_rows == 4

    def test_iteration_yields_row_dicts(self, devices):
        rows = list(devices)
        assert rows[0] == {"vendor": "apple", "product": "iphone_11", "kg": 60.0}

    def test_row_negative_index(self, devices):
        assert devices.row(-1)["product"] == "honor_5c"

    def test_row_out_of_range(self, devices):
        with pytest.raises(TableError):
            devices.row(4)

    def test_column_returns_copy(self, devices):
        column = devices.column("kg")
        column.append(0.0)
        assert len(devices.column("kg")) == 4

    def test_unknown_column_raises(self, devices):
        with pytest.raises(TableError):
            devices.column("nope")

    def test_to_records_roundtrip(self, devices):
        assert Table.from_records(devices.to_records()) == devices

    def test_equality(self, devices):
        assert devices == Table.from_records(devices.to_records())
        assert devices != devices.head(2)


class TestRelationalOps:
    def test_select_orders_columns(self, devices):
        selected = devices.select("kg", "vendor")
        assert selected.column_names == ["kg", "vendor"]

    def test_select_unknown_raises(self, devices):
        with pytest.raises(TableError):
            devices.select("nope")

    def test_select_empty_raises(self, devices):
        with pytest.raises(TableError):
            devices.select()

    def test_where(self, devices):
        apple = devices.where(lambda row: row["vendor"] == "apple")
        assert apple.num_rows == 2

    def test_where_keeps_no_rows(self, devices):
        none = devices.where(lambda row: False)
        assert none.num_rows == 0
        assert none.column_names == devices.column_names

    def test_with_column_from_function(self, devices):
        tonned = devices.with_column("tonnes", lambda row: row["kg"] / 1e3)
        assert tonned.column("tonnes")[0] == pytest.approx(0.06)

    def test_with_column_from_sequence(self, devices):
        table = devices.with_column("rank", [1, 2, 3, 4])
        assert table.column("rank") == [1, 2, 3, 4]

    def test_with_column_wrong_length(self, devices):
        with pytest.raises(TableError):
            devices.with_column("rank", [1])

    def test_with_column_replaces(self, devices):
        table = devices.with_column("kg", lambda row: 0.0)
        assert set(table.column("kg")) == {0.0}

    def test_drop(self, devices):
        assert devices.drop("kg").column_names == ["vendor", "product"]

    def test_drop_all_raises(self, devices):
        with pytest.raises(TableError):
            devices.drop("vendor", "product", "kg")

    def test_rename(self, devices):
        renamed = devices.rename({"kg": "mass_kg"})
        assert "mass_kg" in renamed.column_names
        assert "kg" not in renamed.column_names

    def test_rename_unknown_raises(self, devices):
        with pytest.raises(TableError):
            devices.rename({"nope": "x"})

    def test_sort_by(self, devices):
        ordered = devices.sort_by("kg")
        assert ordered.column("kg") == sorted(devices.column("kg"))

    def test_sort_by_reverse(self, devices):
        ordered = devices.sort_by("kg", reverse=True)
        assert ordered.column("kg") == sorted(devices.column("kg"), reverse=True)

    def test_sort_is_stable_on_secondary(self, devices):
        ordered = devices.sort_by("vendor", "kg")
        apple_rows = [r for r in ordered if r["vendor"] == "apple"]
        assert [r["kg"] for r in apple_rows] == [60.0, 66.0]

    def test_head(self, devices):
        assert devices.head(2).num_rows == 2
        assert devices.head(10).num_rows == 4

    def test_head_negative_raises(self, devices):
        with pytest.raises(TableError):
            devices.head(-1)

    def test_unique_preserves_order(self, devices):
        assert devices.unique("vendor") == ["apple", "google", "huawei"]


class TestGroupingAndJoins:
    def test_group_by_partitions(self, devices):
        groups = dict(devices.group_by("vendor"))
        assert groups[("apple",)].num_rows == 2
        assert groups[("google",)].num_rows == 1

    def test_group_by_first_appearance_order(self, devices):
        keys = [key for key, _ in devices.group_by("vendor")]
        assert keys == [("apple",), ("google",), ("huawei",)]

    def test_aggregate_sum(self, devices):
        totals = devices.aggregate(by=["vendor"], total=("kg", sum))
        apple = totals.where(lambda row: row["vendor"] == "apple").row(0)
        assert apple["total"] == pytest.approx(126.0)

    def test_aggregate_multiple_reducers(self, devices):
        stats = devices.aggregate(
            by=["vendor"], total=("kg", sum), count=("kg", len)
        )
        assert stats.column_names == ["vendor", "total", "count"]

    def test_aggregate_needs_aggregations(self, devices):
        with pytest.raises(TableError):
            devices.aggregate(by=["vendor"])

    def test_join_inner(self, devices):
        years = Table.from_records(
            [
                {"product": "iphone_11", "year": 2019},
                {"product": "pixel_3a", "year": 2019},
            ]
        )
        joined = devices.join(years, on="product")
        assert joined.num_rows == 2
        assert "year" in joined.column_names

    def test_join_suffixes_clashing_columns(self):
        left = Table.from_records([{"k": 1, "v": "a"}])
        right = Table.from_records([{"k": 1, "v": "b"}])
        joined = left.join(right, on="k")
        assert joined.row(0)["v"] == "a"
        assert joined.row(0)["v_right"] == "b"

    def test_join_missing_key_raises(self, devices):
        with pytest.raises(TableError):
            devices.join(devices, on="nope")

    def test_join_multiplicity(self):
        left = Table.from_records([{"k": 1}, {"k": 1}])
        right = Table.from_records([{"k": 1, "v": "x"}, {"k": 1, "v": "y"}])
        assert left.join(right, on="k").num_rows == 4


class TestRendering:
    def test_to_text_contains_header_and_rule(self, devices):
        text = devices.to_text()
        lines = text.splitlines()
        assert "vendor" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_to_text_formats_floats(self, devices):
        assert "60.000" in devices.to_text()
        assert "60.0000" in devices.to_text(float_format="{:.4f}")

    def test_repr_summarizes(self, devices):
        assert "4 rows" in repr(devices)
