"""Tests for Monte Carlo uncertainty propagation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.uncertainty import (
    Fixed,
    LogNormal,
    Mixture,
    Normal,
    Triangular,
    Uniform,
    UncertaintyResult,
    is_distribution,
    monte_carlo,
)
from repro.errors import SimulationError


class TestDistributions:
    def test_fixed_is_constant(self):
        rng = np.random.default_rng(0)
        samples = Fixed(3.5).sample(rng, 100)
        assert np.all(samples == 3.5)

    def test_uniform_within_bounds(self):
        rng = np.random.default_rng(0)
        samples = Uniform(1.0, 2.0).sample(rng, 1000)
        assert np.all((samples >= 1.0) & (samples <= 2.0))

    def test_normal_truncated_at_zero(self):
        rng = np.random.default_rng(0)
        samples = Normal(0.1, 5.0).sample(rng, 1000)
        assert np.all(samples >= 0.0)

    def test_triangular_within_bounds(self):
        rng = np.random.default_rng(0)
        samples = Triangular(1.0, 2.0, 4.0).sample(rng, 1000)
        assert np.all((samples >= 1.0) & (samples <= 4.0))

    def test_degenerate_triangular(self):
        rng = np.random.default_rng(0)
        assert np.all(Triangular(2.0, 2.0, 2.0).sample(rng, 10) == 2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            Normal(1.0, -0.1)
        with pytest.raises(SimulationError):
            Uniform(2.0, 1.0)
        with pytest.raises(SimulationError):
            Triangular(1.0, 0.5, 2.0)

    def test_lognormal_positive_with_matching_median(self):
        rng = np.random.default_rng(0)
        dist = LogNormal.from_median(2.0, 0.4)
        samples = dist.sample(rng, 4001)
        assert np.all(samples > 0.0)
        assert abs(float(np.median(samples)) - 2.0) < 0.1

    def test_lognormal_zero_sigma_is_constant(self):
        rng = np.random.default_rng(0)
        samples = LogNormal.from_median(3.0, 0.0).sample(rng, 16)
        # Constant at exp(log(median)) — exact up to the log/exp
        # round-trip, which is why zero-variance *collapse* guarantees
        # use Fixed/Normal/Triangular rather than LogNormal.
        assert np.all(samples == samples[0])
        assert samples[0] == pytest.approx(3.0, rel=1e-15)

    def test_mixture_samples_only_component_values(self):
        rng = np.random.default_rng(0)
        dist = Mixture.discrete({3.0: 0.25, 5.0: 0.75})
        samples = dist.sample(rng, 2000)
        values, counts = np.unique(samples, return_counts=True)
        assert set(values) == {3.0, 5.0}
        # The 3:1 weighting shows up in the counts.
        assert counts[values == 5.0][0] > counts[values == 3.0][0]

    def test_mixture_of_continuous_components(self):
        rng = np.random.default_rng(1)
        dist = Mixture(
            components=(Uniform(0.0, 1.0), Uniform(10.0, 11.0)),
            weights=(1.0, 1.0),
        )
        samples = dist.sample(rng, 500)
        assert np.all((samples <= 1.0) | (samples >= 10.0))
        assert np.any(samples <= 1.0) and np.any(samples >= 10.0)

    def test_mixture_weights_need_not_be_normalized(self):
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        a = Mixture.discrete({1.0: 1.0, 2.0: 3.0}).sample(rng_a, 100)
        b = Mixture.discrete({1.0: 10.0, 2.0: 30.0}).sample(rng_b, 100)
        assert np.array_equal(a, b)

    def test_mixture_validation(self):
        with pytest.raises(SimulationError):
            Mixture(components=(), weights=())
        with pytest.raises(SimulationError):
            Mixture(components=(Fixed(1.0),), weights=(1.0, 2.0))
        with pytest.raises(SimulationError):
            Mixture(components=(Fixed(1.0),), weights=(-1.0,))
        with pytest.raises(SimulationError):
            Mixture(components=(Fixed(1.0), Fixed(2.0)), weights=(0.0, 0.0))
        with pytest.raises(SimulationError):
            Mixture.discrete({})

    def test_is_distribution(self):
        assert is_distribution(Normal(1.0, 0.1))
        assert is_distribution(Mixture.discrete({1.0: 1.0}))
        assert is_distribution(Fixed(2.0))
        assert not is_distribution(2.0)
        assert not is_distribution("Normal(1, 0.1)")


class TestMonteCarlo:
    def test_deterministic_given_seed(self):
        spec = {"a": Normal(10.0, 1.0)}
        first = monte_carlo(lambda p: p["a"], spec, samples=100, seed=7)
        second = monte_carlo(lambda p: p["a"], spec, samples=100, seed=7)
        assert np.array_equal(first.samples, second.samples)

    def test_fixed_inputs_give_constant_output(self):
        spec = {"a": Fixed(2.0), "b": Fixed(3.0)}
        result = monte_carlo(lambda p: p["a"] * p["b"], spec, samples=50)
        assert result.std == 0.0
        assert result.mean == pytest.approx(6.0)

    def test_mean_of_sum_is_sum_of_means(self):
        spec = {"a": Normal(10.0, 1.0), "b": Uniform(0.0, 2.0)}
        result = monte_carlo(
            lambda p: p["a"] + p["b"], spec, samples=4000, seed=1
        )
        assert result.mean == pytest.approx(11.0, abs=0.15)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(SimulationError):
            monte_carlo(lambda p: 0.0, {}, samples=10)
        with pytest.raises(SimulationError):
            monte_carlo(lambda p: 0.0, {"a": Fixed(1.0)}, samples=0)

    def test_break_even_uncertainty_example(self):
        """Uncertain IC capex and grid intensity -> break-even days."""
        from repro.units import Carbon, CarbonIntensity, Power
        from repro.core.amortization import break_even_days

        def model(params):
            return break_even_days(
                Carbon.kg(params["capex_kg"]),
                Power.watts(7.0),
                CarbonIntensity.g_per_kwh(params["grid"]),
            )

        result = monte_carlo(
            model,
            {
                "capex_kg": Triangular(15.0, 22.4, 30.0),
                "grid": Uniform(300.0, 450.0),
            },
            samples=2000,
            seed=3,
        )
        low, high = result.interval(0.90)
        assert low < 351.0 < high  # the point estimate sits inside


class TestVectorizedMonteCarlo:
    def test_batched_path_is_bit_identical_to_loop(self):
        """Same draws, same elementwise arithmetic -> same bits."""
        from repro.core.amortization import break_even_days
        from repro.units import Carbon, CarbonIntensity, Power

        def model(params):
            return break_even_days(
                Carbon.kg(params["capex_kg"]),
                Power.watts(params["power_w"]),
                CarbonIntensity.g_per_kwh(params["grid"]),
            )

        spec = {
            "capex_kg": Triangular(15.0, 22.4, 30.0),
            "power_w": Triangular(5.0, 7.0, 9.0),
            "grid": Uniform(295.0, 583.0),
        }
        looped = monte_carlo(model, spec, samples=500, seed=11)
        batched = monte_carlo(model, spec, samples=500, seed=11, vectorized=True)
        assert np.array_equal(looped.samples, batched.samples)

    def test_scalar_only_model_falls_back(self):
        """A model that chokes on arrays still works under the flag."""

        def model(params):
            return float(params["a"]) + 1.0  # float() rejects arrays

        result = monte_carlo(
            model, {"a": Fixed(2.0)}, samples=20, vectorized=True
        )
        assert result.mean == pytest.approx(3.0)

    def test_wrong_shape_batched_result_falls_back(self):
        def model(params):
            return 5.0  # scalar regardless of input width

        result = monte_carlo(
            model, {"a": Fixed(1.0)}, samples=10, vectorized=True
        )
        assert result.mean == pytest.approx(5.0)

    def test_nan_output_names_offending_draw(self):
        def model(params):
            return float("nan") if params["a"] > 1.5 else params["a"]

        with pytest.raises(SimulationError, match=r"sample \d+.*'a'"):
            monte_carlo(model, {"a": Uniform(1.0, 2.0)}, samples=50, seed=2)

    def test_inf_output_rejected_in_batched_path(self):
        def model(params):
            return 1.0 / (params["a"] - params["a"])  # inf everywhere

        with pytest.raises(SimulationError, match="non-finite"):
            monte_carlo(
                model, {"a": Fixed(3.0)}, samples=10, vectorized=True
            )


class TestUncertaintyResult:
    def test_percentiles_ordered(self):
        result = UncertaintyResult(np.arange(100, dtype=float))
        assert result.percentile(5) < result.percentile(50) < result.percentile(95)

    def test_interval_contains_median(self):
        result = UncertaintyResult(np.random.default_rng(0).normal(size=500))
        low, high = result.interval(0.8)
        assert low < result.percentile(50) < high

    def test_probability_above(self):
        result = UncertaintyResult(np.array([1.0, 2.0, 3.0, 4.0]))
        assert result.probability_above(2.5) == pytest.approx(0.5)

    def test_summary_table_columns(self):
        result = UncertaintyResult(np.array([1.0, 2.0, 3.0]))
        table = result.summary_table()
        assert table.column_names == ["mean", "std", "p05", "p50", "p95"]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            UncertaintyResult(np.array([]))
        result = UncertaintyResult(np.array([1.0, 2.0]))
        with pytest.raises(SimulationError):
            result.percentile(120.0)
        with pytest.raises(SimulationError):
            result.interval(1.5)


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.0, max_value=10.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_monotone_model_preserves_interval_order(mean, spread, seed):
    """For a monotone model, output interval ends follow input order."""
    spec = {"x": Uniform(mean, mean + spread + 1e-6)}
    result = monte_carlo(lambda p: 3.0 * p["x"] + 1.0, spec, samples=300,
                         seed=seed)
    low, high = result.interval(0.9)
    assert low <= high
    assert low >= 3.0 * mean + 1.0 - 1e-6
    assert high <= 3.0 * (mean + spread + 1e-6) + 1.0 + 1e-6
