"""Tests for the resilient sweep service (``repro.serve``).

Covers the three layers separately and then end-to-end:

* unit: :class:`CircuitBreaker` state machine (injectable clock),
  request parsing/grouping, :class:`MicroBatcher` admission control,
  coalescing, deadlines, and drain;
* library: :func:`execute_group` answers are bit-identical to direct
  library calls regardless of batch composition;
* end-to-end: a live :class:`SweepService` over real sockets —
  health endpoints, coalesced correctness, shedding, breaker
  degradation with :class:`~repro.exec.FailureReport` attachment, and
  zero-loss SIGTERM-style drains (including the real CLI process).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.errors import ChunkFailedError, ReproError, ServiceError
from repro.exec.faults import FaultRule, FaultSpec, install_faults
from repro.serve import (
    CircuitBreaker,
    DrainingError,
    MicroBatcher,
    OverloadedError,
    Request,
    Response,
    ServeConfig,
    ServiceClient,
    SweepService,
    execute_group,
    is_infrastructure_error,
    parse_request,
)


class FakeClock:
    """A manually-advanced monotonic clock for deterministic timing."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def run_service(scenario, config: "ServeConfig | None" = None):
    """Run ``scenario(service, client)`` against a live service.

    Builds the whole stack inside one ``asyncio.run`` so plain sync
    tests can drive real sockets without pytest-asyncio.
    """

    async def runner():
        service = SweepService(config or ServeConfig())
        await service.start()
        client = ServiceClient("127.0.0.1", service.port)
        try:
            return await scenario(service, client)
        finally:
            await client.close()
            if not service.draining:
                await service.drain()

    return asyncio.run(runner())


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.coalesce
        assert config.effective_max_batch == config.max_batch
        assert config.effective_window_s == config.batch_window_s

    def test_disabling_coalescing_forces_width_one(self):
        config = ServeConfig(coalesce=False, max_batch=64, batch_window_s=0.5)
        assert config.effective_max_batch == 1
        assert config.effective_window_s == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"max_batch": -1},
            {"batch_window_s": -0.1},
            {"jobs": 0},
            {"breaker_threshold": 0},
            {"drain_grace_s": -1.0},
        ],
    )
    def test_rejects_nonsense_bounds(self, kwargs):
        with pytest.raises(ServiceError):
            ServeConfig(**kwargs)

    def test_service_error_is_a_repro_error(self):
        assert issubclass(ServiceError, ReproError)


class TestCircuitBreaker:
    def test_closed_allows_and_success_resets(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        # The success in between reset the count: still closed.
        assert breaker.state == "closed"

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # everyone else stays degraded

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_full_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=10.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed: re-open immediately
        assert breaker.state == "open"
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_snapshot_counts_trips(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["trips"] == 1
        assert snapshot["failure_threshold"] == 1

    def test_infrastructure_error_classification(self):
        import concurrent.futures.process

        assert is_infrastructure_error(
            ChunkFailedError(
                "boom", index=0, start=0, stop=1, attempts=2, kind="error"
            )
        )
        assert is_infrastructure_error(
            concurrent.futures.process.BrokenProcessPool("pool died")
        )
        assert not is_infrastructure_error(ValueError("client garbage"))
        assert not is_infrastructure_error(ServiceError("bad request"))


class TestParseRequest:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown request kind"):
            parse_request("fleet", {})

    def test_body_must_be_an_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            parse_request("scenario", [1, 2])

    def test_overrides_are_sorted_and_typed(self):
        request = parse_request(
            "scenario", {"overrides": {"b": 2, "a": 1.5}}
        )
        assert request.overrides == (("a", 1.5), ("b", 2))

    @pytest.mark.parametrize(
        "value", [[1, 2], {"nested": 1}, None, True]
    )
    def test_override_values_must_be_scalars(self, value):
        with pytest.raises(ServiceError, match="number or string"):
            parse_request("scenario", {"overrides": {"x": value}})

    @pytest.mark.parametrize("deadline", [0, -1.0, "soon", True])
    def test_deadline_must_be_a_positive_number(self, deadline):
        with pytest.raises(ServiceError, match="deadline_s"):
            parse_request("scenario", {"deadline_s": deadline})

    def test_sweep_name_must_be_registered(self):
        with pytest.raises(ServiceError, match="unknown sweep"):
            parse_request("sweep", {"name": "no_such_sweep"})

    @pytest.mark.parametrize("draws", [0, -5, 2.5, True])
    def test_sweep_draws_must_be_a_positive_int(self, draws):
        with pytest.raises(ServiceError, match="draws"):
            parse_request(
                "sweep", {"name": "fleet_growth_lifetime", "draws": draws}
            )

    def test_scenario_requests_share_one_group(self):
        first = parse_request("scenario", {"overrides": {"facility.pue": 1.2}})
        second = parse_request("scenario", {"overrides": {}})
        assert first.group_key == second.group_key

    def test_portfolio_groups_by_override_names(self):
        same_a = parse_request("portfolio", {"overrides": {"lifetime_years": 3}})
        same_b = parse_request("portfolio", {"overrides": {"lifetime_years": 5}})
        other = parse_request("portfolio", {"overrides": {"units": 1}})
        assert same_a.group_key == same_b.group_key
        assert same_a.group_key != other.group_key

    def test_sweep_groups_by_name_and_mode(self):
        point = parse_request("sweep", {"name": "fleet_growth_lifetime"})
        uncertain = parse_request(
            "sweep", {"name": "fleet_growth_lifetime", "draws": 8, "seed": 1}
        )
        assert point.group_key != uncertain.group_key
        assert point.group_key == parse_request(
            "sweep", {"name": "fleet_growth_lifetime"}
        ).group_key


def _echo_execute(calls):
    """An executor stub that records batches and echoes request order."""

    async def execute(group_key, requests, budget_s):
        calls.append((group_key, [r.overrides for r in requests], budget_s))
        return [
            Response(status=200, payload={"overrides": dict(r.overrides)})
            for r in requests
        ]

    return execute


class TestMicroBatcher:
    def test_concurrent_submits_coalesce_into_one_call(self):
        async def scenario():
            calls = []
            batcher = MicroBatcher(
                _echo_execute(calls),
                max_queue=64,
                max_batch=64,
                window_s=0.01,
            )
            batcher.start()
            requests = [
                Request(kind="scenario", overrides=(("x", float(i)),))
                for i in range(8)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            await batcher.drain()
            return calls, responses

        calls, responses = asyncio.run(scenario())
        assert len(calls) == 1  # all eight shared one kernel call
        assert len(calls[0][1]) == 8
        # Each response reached the caller that asked for it.
        for index, response in enumerate(responses):
            assert response.payload["overrides"] == {"x": float(index)}

    def test_max_batch_bounds_coalescing_width(self):
        async def scenario():
            calls = []
            batcher = MicroBatcher(
                _echo_execute(calls), max_queue=64, max_batch=3, window_s=0.01
            )
            batcher.start()
            await asyncio.gather(
                *(batcher.submit(Request(kind="scenario")) for _ in range(7))
            )
            await batcher.drain()
            return [len(batch) for _, batch, _ in calls]

        widths = asyncio.run(scenario())
        assert sum(widths) == 7
        assert max(widths) <= 3

    def test_mixed_group_keys_dispatch_separately(self):
        async def scenario():
            calls = []
            batcher = MicroBatcher(
                _echo_execute(calls), max_queue=64, max_batch=64, window_s=0.01
            )
            batcher.start()
            await asyncio.gather(
                batcher.submit(Request(kind="scenario")),
                batcher.submit(
                    Request(kind="sweep", sweep_name="fleet_growth_lifetime")
                ),
                batcher.submit(Request(kind="scenario")),
            )
            await batcher.drain()
            return calls

        calls = asyncio.run(scenario())
        keys = sorted(key[0] for key, _, _ in calls)
        assert keys == ["scenario", "sweep"]
        widths = {key[0]: len(batch) for key, batch, _ in calls}
        assert widths["scenario"] == 2  # still coalesced around the sweep

    def test_full_queue_sheds_before_enqueueing(self):
        async def scenario():
            batcher = MicroBatcher(
                _echo_execute([]), max_queue=1, max_batch=1
            )
            # The dispatcher is deliberately not started, so the first
            # submission stays queued and the second must be refused.
            first = asyncio.ensure_future(
                batcher.submit(Request(kind="scenario"))
            )
            await asyncio.sleep(0)
            with pytest.raises(OverloadedError) as excinfo:
                await batcher.submit(Request(kind="scenario"))
            abandoned = await batcher.drain(0.01)
            response = await first
            return excinfo.value, abandoned, response

        error, abandoned, response = asyncio.run(scenario())
        assert error.queue_depth == 1
        assert error.limit == 1
        # Zero-loss even on the degenerate path: the queued request was
        # answered (with a shutdown 503), not dropped.
        assert abandoned == 1
        assert response.status == 503

    def test_draining_refuses_new_submissions(self):
        async def scenario():
            batcher = MicroBatcher(
                _echo_execute([]), max_queue=8, max_batch=8
            )
            batcher.start()
            await batcher.drain()
            with pytest.raises(DrainingError):
                await batcher.submit(Request(kind="scenario"))

        asyncio.run(scenario())

    def test_expired_deadline_answered_504_without_kernel_time(self):
        async def scenario():
            clock = FakeClock()
            calls = []
            batcher = MicroBatcher(
                _echo_execute(calls),
                max_queue=8,
                max_batch=8,
                clock=clock,
            )
            # Enqueue with a 1 s budget, then let 2 s "pass" before the
            # dispatcher ever runs.
            pending = asyncio.ensure_future(
                batcher.submit(Request(kind="scenario", deadline_s=1.0))
            )
            await asyncio.sleep(0)
            clock.advance(2.0)
            batcher.start()
            response = await pending
            await batcher.drain()
            return calls, response

        calls, response = asyncio.run(scenario())
        assert response.status == 504
        assert response.payload["error"] == "deadline_exceeded"
        assert calls == []  # the kernel was never invoked

    def test_tightest_live_deadline_becomes_the_batch_budget(self):
        async def scenario():
            clock = FakeClock()
            calls = []
            batcher = MicroBatcher(
                _echo_execute(calls),
                max_queue=8,
                max_batch=8,
                clock=clock,
            )
            futures = [
                asyncio.ensure_future(
                    batcher.submit(
                        Request(kind="scenario", deadline_s=deadline)
                    )
                )
                for deadline in (5.0, 2.0, None)
            ]
            await asyncio.sleep(0)
            batcher.start()
            await asyncio.gather(*futures)
            await batcher.drain()
            return calls

        calls = asyncio.run(scenario())
        assert len(calls) == 1
        assert calls[0][2] == pytest.approx(2.0)

    def test_executor_exception_answers_the_batch_with_500s(self):
        async def scenario():
            async def explode(group_key, requests, budget_s):
                raise RuntimeError("kernel blew up")

            batcher = MicroBatcher(explode, max_queue=8, max_batch=8)
            batcher.start()
            responses = await asyncio.gather(
                batcher.submit(Request(kind="scenario")),
                batcher.submit(Request(kind="scenario")),
            )
            await batcher.drain()
            return responses

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == [500, 500]
        assert all("kernel blew up" in r.payload["detail"] for r in responses)

    def test_response_count_mismatch_is_caught(self):
        async def scenario():
            async def short(group_key, requests, budget_s):
                return [Response(status=200)]  # one short

            batcher = MicroBatcher(short, max_queue=8, max_batch=8)
            batcher.start()
            responses = await asyncio.gather(
                batcher.submit(Request(kind="scenario")),
                batcher.submit(Request(kind="scenario")),
            )
            await batcher.drain()
            return responses

        responses = asyncio.run(scenario())
        assert [r.status for r in responses] == [500, 500]

    def test_drain_flushes_everything_admitted(self):
        async def scenario():
            started = asyncio.Event()
            release = asyncio.Event()

            async def slow(group_key, requests, budget_s):
                started.set()
                await release.wait()
                return [Response(status=200) for _ in requests]

            batcher = MicroBatcher(
                slow, max_queue=32, max_batch=1, window_s=0.0
            )
            batcher.start()
            futures = [
                asyncio.ensure_future(
                    batcher.submit(Request(kind="scenario"))
                )
                for _ in range(5)
            ]
            await started.wait()
            drain = asyncio.ensure_future(batcher.drain())
            await asyncio.sleep(0)
            release.set()
            abandoned = await drain
            responses = await asyncio.gather(*futures)
            return abandoned, responses

        abandoned, responses = asyncio.run(scenario())
        assert abandoned == 0
        assert all(r.status == 200 for r in responses)


def _expected_scenario_row(overrides):
    """The bit-exact row a direct library call produces for one scenario."""
    from repro.datacenter.fleet import simulate_fleet_batch
    from repro.scenarios.presets import facebook_like_fleet
    from repro.scenarios.runner import apply_overrides

    table = simulate_fleet_batch(
        [apply_overrides(facebook_like_fleet(), overrides)]
    ).final_year_table().drop("scenario")
    return {
        name: table.column(name)[0] for name in table.column_names
    }


class TestExecuteGroup:
    OPTIONS = {"jobs": 1, "chunk_size": None, "retries": None,
               "on_error": "raise"}

    def test_empty_batch_is_legal(self):
        assert execute_group([], options=self.OPTIONS) == []

    def test_mixed_group_keys_rejected(self):
        with pytest.raises(ServiceError, match="one group key"):
            execute_group(
                [
                    Request(kind="scenario"),
                    Request(kind="sweep", sweep_name="fleet_growth_lifetime"),
                ],
                options=self.OPTIONS,
            )

    def test_coalesced_scenarios_bit_identical_to_singles(self):
        overrides = [
            {},
            {"facility.pue": 1.2},
            {"annual_growth": 0.1},
            {"facility.pue": 1.5, "initial_servers": 40000},
        ]
        requests = [
            parse_request("scenario", {"overrides": record})
            for record in overrides
        ]
        batched = execute_group(requests, options=self.OPTIONS)
        assert all(response.status == 200 for response in batched)
        for response, record in zip(batched, overrides):
            expected = _expected_scenario_row(record)
            row = response.payload["row"]
            assert set(row) == set(expected)
            for name, value in expected.items():
                # Exact equality: coalescing must not perturb a single
                # bit relative to the direct library call.
                assert row[name] == value, name
            assert response.payload["degraded"] is False

    def test_batch_composition_cannot_leak_into_answers(self):
        target = {"facility.pue": 1.3}
        alone = execute_group(
            [parse_request("scenario", {"overrides": target})],
            options=self.OPTIONS,
        )[0]
        crowded = execute_group(
            [
                parse_request("scenario", {"overrides": {}}),
                parse_request("scenario", {"overrides": target}),
                parse_request("scenario", {"overrides": {"facility.pue": 2.0}}),
            ],
            options=self.OPTIONS,
        )[1]
        assert alone.payload == crowded.payload

    def test_portfolio_row_matches_direct_sweep(self):
        from repro.portfolio import default_catalog, sweep_portfolio

        record = {"lifetime_years": 3.0}
        direct = sweep_portfolio(default_catalog(), [record])
        response = execute_group(
            [parse_request("portfolio", {"overrides": record})],
            options=self.OPTIONS,
        )[0]
        row = response.payload["row"]
        for name in row:
            assert row[name] == direct.column(name)[0], name

    def test_sweep_rows_match_run_sweep(self):
        from repro.scenarios.runner import run_sweep

        direct = run_sweep("fleet_growth_lifetime")
        responses = execute_group(
            [
                parse_request("sweep", {"name": "fleet_growth_lifetime"}),
                parse_request("sweep", {"name": "fleet_growth_lifetime"}),
            ],
            options=self.OPTIONS,
        )
        # Two coalesced duplicates: one execution, both answered.
        for response in responses:
            rows = response.payload["rows"]
            assert len(rows) == direct.num_rows
            for index, row in enumerate(rows):
                for name, value in row.items():
                    assert value == direct.column(name)[index]

    def test_sweep_results_cache_round_trip(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        request = parse_request("sweep", {"name": "fleet_growth_lifetime"})
        cold = execute_group([request], options=self.OPTIONS, cache=cache)[0]
        warm = execute_group([request], options=self.OPTIONS, cache=cache)[0]
        assert cold.payload["cached"] is False
        assert warm.payload["cached"] is True
        assert warm.payload["rows"] == cold.payload["rows"]

    def test_uncertain_sweep_returns_quantile_rows(self):
        from repro.scenarios.runner import run_uncertain_sweep

        direct = run_uncertain_sweep(
            "fleet_growth_lifetime", 8, 42
        ).quantile_table()
        response = execute_group(
            [
                parse_request(
                    "sweep",
                    {"name": "fleet_growth_lifetime", "draws": 8, "seed": 42},
                )
            ],
            options=self.OPTIONS,
        )[0]
        assert response.payload["mode"] == "uncertain"
        rows = response.payload["rows"]
        assert len(rows) == direct.num_rows
        for index, row in enumerate(rows):
            for name, value in row.items():
                assert value == direct.column(name)[index]


class TestServiceEndpoints:
    def test_health_ready_metrics(self):
        async def scenario(service, client):
            health = await client.healthz()
            ready = await client.readyz()
            metrics = await client.metrics()
            return health, ready, metrics

        health, ready, metrics = run_service(scenario)
        assert health[0] == 200
        assert health[1]["breaker"]["state"] == "closed"
        assert ready[0] == 200
        assert ready[1]["queue_limit"] == ServeConfig().max_queue
        assert metrics[0] == 200
        assert "metrics" in metrics[1]

    def test_unknown_route_is_404(self):
        async def scenario(service, client):
            return await client.request("GET", "/v2/scenario")

        status, payload = run_service(scenario)
        assert status == 404
        assert payload["error"] == "not_found"

    def test_wrong_methods_are_405(self):
        async def scenario(service, client):
            posted = await client.request("POST", "/healthz", {})
            got = await client.request("GET", "/v1/scenario")
            return posted, got

        posted, got = run_service(scenario)
        assert posted[0] == 405
        assert got[0] == 405

    def test_malformed_json_is_400(self):
        async def scenario(service, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            body = b"{not json"
            writer.write(
                b"POST /v1/scenario HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            return status_line

        status_line = run_service(scenario)
        assert b"400" in status_line

    def test_bad_override_is_refused_at_admission(self):
        async def scenario(service, client):
            scenario_resp = await client.scenario({"no.such.path": 1.0})
            portfolio_resp = await client.portfolio({"volume": 2})
            return scenario_resp, portfolio_resp

        scenario_resp, portfolio_resp = run_service(scenario)
        assert scenario_resp[0] == 400
        assert scenario_resp[1]["error"] == "bad_request"
        assert portfolio_resp[0] == 400

    def test_oversized_body_is_413(self):
        async def scenario(service, client):
            status, payload = await client.request(
                "POST", "/v1/scenario",
                {"overrides": {}, "padding": "x" * 2048},
            )
            return status, payload

        status, payload = run_service(
            scenario, ServeConfig(max_body_bytes=1024)
        )
        assert status == 413

    def test_concurrent_clients_coalesce_and_stay_bit_identical(self):
        overrides = [
            {},
            {"facility.pue": 1.2},
            {"annual_growth": 0.1},
            {"facility.pue": 1.5},
            {"initial_servers": 40000},
            {"facility.pue": 1.1, "annual_growth": 0.2},
        ]

        async def scenario(service, client):
            clients = [
                ServiceClient("127.0.0.1", service.port) for _ in overrides
            ]
            try:
                responses = await asyncio.gather(
                    *(
                        one.scenario(record)
                        for one, record in zip(clients, overrides)
                    )
                )
            finally:
                for one in clients:
                    await one.close()
            metrics = (await client.metrics())[1]["metrics"]
            return responses, metrics

        responses, metrics = run_service(
            scenario, ServeConfig(batch_window_s=0.05)
        )
        for (status, payload), record in zip(responses, overrides):
            assert status == 200
            expected = _expected_scenario_row(record)
            for name, value in expected.items():
                assert payload["row"][name] == float(value), name
        # The six concurrent requests shared kernel calls: strictly
        # fewer batches than requests, and the width histogram saw it.
        counters = metrics["counters"]
        assert counters["serve.requests"] == len(overrides)
        assert counters["serve.batches"] < len(overrides)
        assert counters["serve.status.2xx"] == len(overrides)
        widths = metrics["histograms"]["serve.coalesce_width"]
        assert widths["max"] > 1

    def test_sweep_requests_share_the_warm_cache(self, tmp_path):
        async def scenario(service, client):
            cold = await client.sweep("fleet_growth_lifetime")
            warm = await client.sweep("fleet_growth_lifetime")
            return cold, warm

        cold, warm = run_service(
            scenario, ServeConfig(cache_dir=str(tmp_path))
        )
        assert cold[0] == warm[0] == 200
        assert cold[1]["cached"] is False
        assert warm[1]["cached"] is True
        assert warm[1]["rows"] == cold[1]["rows"]

    def test_overload_sheds_with_429_and_retry_after(self):
        async def scenario(service, client):
            started = asyncio.Event()
            release = asyncio.Event()

            async def stall(group_key, requests, budget_s):
                started.set()
                await release.wait()
                return [
                    Response(status=200, payload={"kind": r.kind})
                    for r in requests
                ]

            service._batcher._execute = stall
            clients = [
                ServiceClient("127.0.0.1", service.port) for _ in range(4)
            ]
            try:
                first = asyncio.ensure_future(clients[0].scenario({}))
                # Wait until the stalled batch is in flight (the queue
                # slot is free again) ...
                await asyncio.wait_for(started.wait(), 10)
                # ... then fill the one queue slot ...
                second = asyncio.ensure_future(clients[1].scenario({}))
                for _ in range(2000):
                    if service.queue_depth >= 1:
                        break
                    await asyncio.sleep(0.005)
                assert service.queue_depth >= 1
                # ... so this one must shed.
                shed = await clients[2].scenario({})
                release.set()
                ok = await asyncio.gather(first, second)
                metrics = (await client.metrics())[1]["metrics"]
                return shed, ok, metrics
            finally:
                for one in clients:
                    await one.close()

        shed, ok, metrics = run_service(
            scenario,
            ServeConfig(max_queue=1, max_batch=1, batch_window_s=0.0),
        )
        status, payload = shed
        assert status == 429
        assert payload["error"] == "overloaded"
        assert payload["queue_limit"] == 1
        assert payload["retry_after_s"] == 1.0
        assert all(status == 200 for status, _ in ok)
        assert metrics["counters"]["serve.shed"] >= 1

    def test_breaker_trips_to_degraded_responses_with_report(self):
        # Only chunk 0 faults (every attempt): with chunk_size=1 the
        # two-request batch has a failing chunk and a surviving one.
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(0,), attempts=None),)
        )

        async def scenario(service, client):
            requests = [
                parse_request("scenario", {"overrides": {}}),
                parse_request(
                    "scenario", {"overrides": {"facility.pue": 1.2}}
                ),
            ]
            with install_faults(spec):
                responses = await service._execute_batch(
                    requests[0].group_key, requests, None
                )
                health_open = (await client.healthz())[1]
            # Faults disarmed: the next request is the half-open probe
            # (reset timeout 0) and must close the breaker again.
            recovered = await client.scenario({"facility.pue": 1.2})
            health_closed = (await client.healthz())[1]
            return responses, health_open, recovered, health_closed

        responses, health_open, recovered, health_closed = run_service(
            scenario,
            ServeConfig(
                chunk_size=1, retries=1,
                breaker_threshold=1, breaker_reset_s=0.0,
            ),
        )
        # Primary exhausted its retries (ChunkFailedError), the breaker
        # tripped, and the degraded rerun skipped the still-faulting
        # chunk: the lost request gets a structured failure, its
        # batchmate a degraded-but-correct answer, both with the report.
        lost, survived = responses
        assert lost.status == 500
        assert lost.payload["error"] == "chunk_failed"
        assert lost.payload["degraded"] is True
        assert lost.payload["failure_report"]["failures"]
        assert "ChunkFailedError" in lost.payload["breaker_cause"]
        assert survived.status == 200
        assert survived.payload["degraded"] is True
        assert survived.payload["failure_report"]["failures"]
        expected = _expected_scenario_row({"facility.pue": 1.2})
        assert survived.payload["row"]["capex_kt"] == float(
            expected["capex_kt"]
        )
        assert health_open["breaker"]["state"] == "open"
        assert health_open["breaker"]["trips"] == 1
        status, payload = recovered
        assert status == 200
        assert payload["degraded"] is False
        assert payload["row"]["capex_kt"] == float(expected["capex_kt"])
        assert health_closed["breaker"]["state"] == "closed"

    def test_request_errors_do_not_trip_the_breaker(self):
        async def scenario(service, client):
            for _ in range(5):
                status, _ = await client.request(
                    "POST", "/v1/sweep", {"name": "nope"}
                )
                assert status == 400
            return (await client.healthz())[1]["breaker"]

        breaker = run_service(scenario, ServeConfig(breaker_threshold=1))
        assert breaker["state"] == "closed"
        assert breaker["trips"] == 0

    def test_drain_answers_everything_admitted_and_refuses_the_rest(self):
        async def scenario(service, client):
            release = asyncio.Event()
            started = asyncio.Event()

            async def stall(group_key, requests, budget_s):
                started.set()
                await release.wait()
                return [
                    Response(status=200, payload={"kind": r.kind})
                    for r in requests
                ]

            service._batcher._execute = stall
            clients = [
                ServiceClient("127.0.0.1", service.port) for _ in range(6)
            ]
            try:
                inflight = [
                    asyncio.ensure_future(one.scenario({})) for one in clients
                ]
                await started.wait()
                ready_before = await client.readyz()
                drain = asyncio.ensure_future(service.drain())
                await asyncio.sleep(0.01)
                release.set()
                abandoned = await drain
                responses = await asyncio.gather(*inflight)
                # The listener is closed now: a fresh connection fails.
                refused = None
                try:
                    late = ServiceClient("127.0.0.1", service.port)
                    await late.scenario({})
                except (ConnectionError, ServiceError) as error:
                    refused = error
                return ready_before, abandoned, responses, refused
            finally:
                for one in clients:
                    await one.close()

        ready_before, abandoned, responses, refused = run_service(
            scenario, ServeConfig(max_batch=1, batch_window_s=0.0)
        )
        assert ready_before[0] == 200
        assert abandoned == 0
        # Zero-loss: every request accepted before SIGTERM was answered.
        assert [status for status, _ in responses] == [200] * 6
        assert refused is not None

    def test_readyz_reports_draining(self):
        async def scenario(service, client):
            # Keep one connection open across the drain so the closed
            # listener doesn't matter; drain() closes idle keep-alives,
            # so probe state directly.
            await service.drain()
            status, payload = service._get_readyz()
            return status, payload

        status, payload = run_service(scenario)
        assert status == 503
        assert payload["status"] == "draining"


class TestServeCli:
    def test_cli_serves_and_drains_on_sigterm(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        )
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        trace_path = tmp_path / "serve-trace.jsonl"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--batch-window-ms", "1",
                "--trace-out", str(trace_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = process.stderr.readline()
            assert "listening on http://" in banner
            port = int(banner.rsplit(":", 1)[1].split()[0])
            body = json.dumps(
                {"overrides": {"facility.pue": 1.2}}
            ).encode()
            with urllib.request.urlopen(
                urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/scenario",
                    data=body,
                    headers={"Content-Type": "application/json"},
                ),
                timeout=30,
            ) as response:
                assert response.status == 200
                payload = json.loads(response.read())
            expected = _expected_scenario_row({"facility.pue": 1.2})
            assert payload["row"]["capex_kt"] == float(expected["capex_kt"])
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        except BaseException:
            process.kill()
            process.wait()
            raise
        assert process.returncode == 0, stderr
        assert "drained (0 request(s) abandoned)" in stderr
        # The trace the run left behind replays into the same counters
        # the live /metrics endpoint was serving.
        from repro.obs.recorder import load_trace
        from repro.obs.stats import trace_summary

        summary = trace_summary(load_trace(trace_path))
        assert summary["counters"]["serve.requests"] == 1
        assert summary["counters"]["serve.status.2xx"] == 1

    def test_serve_flags_parse(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        help_text = capsys.readouterr().out
        for flag in (
            "--max-queue", "--max-batch", "--batch-window-ms",
            "--no-coalesce", "--breaker-threshold", "--breaker-reset",
            "--drain-grace", "--cache-dir", "--trace-out",
        ):
            assert flag in help_text
