"""Tests for the analysis toolkit."""

from __future__ import annotations

import pytest

from repro.analysis.breakdown import (
    device_class_breakdown,
    lifecycle_grid_sweep,
    power_class_breakdown,
)
from repro.analysis.projections import ict_projection, interpolate_anchor_series
from repro.analysis.sensitivity import one_at_a_time, tornado_order
from repro.analysis.trends import generational_table, is_monotonic, trend_summary
from repro.data.corporate import INTEL_BREAKDOWN
from repro.data.devices import DEVICE_LCAS, family
from repro.data.energy_sources import source_by_name
from repro.errors import SimulationError


class TestBreakdowns:
    def test_device_class_breakdown_covers_recent_classes(self):
        table = device_class_breakdown(DEVICE_LCAS, min_year=2017)
        assert "phone" in table.column("device_class")
        assert "speaker" in table.column("device_class")

    def test_fraction_means_in_unit_interval(self):
        table = device_class_breakdown(DEVICE_LCAS, min_year=2017)
        for row in table:
            assert 0.0 <= row["manufacturing_mean"] <= 1.0
            assert 0.0 <= row["use_mean"] <= 1.0

    def test_power_class_breakdown_has_two_rows(self):
        table = power_class_breakdown(DEVICE_LCAS, min_year=2017)
        assert sorted(table.column("power_class")) == [
            "always_connected",
            "battery_powered",
        ]

    def test_year_filter_that_empties_raises(self):
        with pytest.raises(SimulationError):
            device_class_breakdown(DEVICE_LCAS, min_year=2100)

    def test_grid_sweep_baseline_total_is_one(self):
        us_like = source_by_name("gas")
        sweep = lifecycle_grid_sweep(INTEL_BREAKDOWN, [us_like])
        # gas (490) is dirtier than the US baseline (380): total > 1.
        assert sweep.row(0)["total"] > 1.0

    def test_grid_sweep_use_share_shrinks_with_clean_energy(self):
        sweep = lifecycle_grid_sweep(
            INTEL_BREAKDOWN,
            [source_by_name("coal"), source_by_name("wind")],
        )
        assert sweep.row(1)["use_share"] < sweep.row(0)["use_share"]


class TestTrends:
    def test_is_monotonic_increasing(self):
        assert is_monotonic([1, 2, 3])
        assert not is_monotonic([1, 3, 2])

    def test_is_monotonic_decreasing(self):
        assert is_monotonic([3, 2, 1], increasing=False)

    def test_tolerance_forgives_small_steps(self):
        assert is_monotonic([1.0, 0.9, 2.0], tolerance=0.2)
        assert not is_monotonic([1.0, 0.5, 2.0], tolerance=0.2)

    def test_short_sequences_trivially_monotone(self):
        assert is_monotonic([])
        assert is_monotonic([5])

    def test_generational_table_columns(self):
        table = generational_table(family("iphone"))
        assert "manufacturing_fraction" in table.column_names
        assert table.num_rows == len(family("iphone"))

    def test_trend_summary_iphone_anchors(self):
        summary = trend_summary(family("iphone"))
        assert summary["first_manufacturing_fraction"] == pytest.approx(0.40)
        assert summary["last_manufacturing_fraction"] == pytest.approx(0.75)
        assert summary["manufacturing_fraction_rising"]

    def test_trend_summary_needs_two_generations(self):
        with pytest.raises(SimulationError):
            trend_summary(family("iphone")[:1])


class TestProjections:
    def test_interpolation_hits_anchors_exactly(self):
        anchors = {2010: 100.0, 2020: 400.0}
        series = interpolate_anchor_series(anchors, [2010, 2020])
        assert series[2010] == 100.0
        assert series[2020] == 400.0

    def test_interpolation_is_geometric(self):
        anchors = {2010: 100.0, 2020: 400.0}
        series = interpolate_anchor_series(anchors, [2015])
        assert series[2015] == pytest.approx(200.0)

    def test_interpolation_monotone_between_rising_anchors(self):
        anchors = {2010: 100.0, 2020: 400.0}
        years = list(range(2010, 2021))
        series = interpolate_anchor_series(anchors, years)
        values = [series[year] for year in years]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_extrapolation_rejected(self):
        with pytest.raises(SimulationError):
            interpolate_anchor_series({2010: 1.0, 2020: 2.0}, [2021])

    def test_nonpositive_anchor_rejected(self):
        with pytest.raises(SimulationError):
            interpolate_anchor_series({2010: 0.0, 2020: 2.0}, [2015])

    def test_ict_projection_has_21_years(self):
        table = ict_projection("expected")
        assert table.num_rows == 21

    def test_ict_share_rises_in_expected_scenario(self):
        table = ict_projection("expected")
        shares = table.column("ict_share")
        assert shares[-1] > shares[0]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SimulationError):
            ict_projection("pessimistic")


def _linear_model(params):
    return params["a"] * 10.0 + params["b"]


class TestSensitivity:
    def test_swing_reflects_parameter_weight(self):
        table = one_at_a_time(
            _linear_model,
            baseline={"a": 1.0, "b": 1.0},
            ranges={"a": (0.0, 2.0), "b": (0.0, 2.0)},
        )
        swings = {row["parameter"]: row["swing"] for row in table}
        assert swings["a"] == pytest.approx(20.0)
        assert swings["b"] == pytest.approx(2.0)

    def test_tornado_order_sorts_by_swing(self):
        table = one_at_a_time(
            _linear_model,
            baseline={"a": 1.0, "b": 1.0},
            ranges={"a": (0.0, 2.0), "b": (0.0, 2.0)},
        )
        ordered = tornado_order(table)
        assert ordered.column("parameter")[0] == "a"

    def test_unknown_parameter_rejected(self):
        with pytest.raises(SimulationError):
            one_at_a_time(_linear_model, baseline={"a": 1.0}, ranges={"z": (0, 1)})

    def test_inverted_range_rejected(self):
        with pytest.raises(SimulationError):
            one_at_a_time(
                _linear_model,
                baseline={"a": 1.0, "b": 1.0},
                ranges={"a": (2.0, 0.0)},
            )
