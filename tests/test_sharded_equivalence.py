"""Sharded execution must be bit-identical to monolithic execution.

The contract of :mod:`repro.exec`: for *any* ``chunk_size``/``jobs``
partition, every sweep — deterministic and uncertain — produces
element-identical results (values, row order, axis columns, quantiles)
to the monolithic reference. Hypothesis drives the chunk geometry over
the inline path (``jobs=1``, which exercises the full
shard-plan/chunk-kernel/concat machinery); a smaller set of pinned
cases drives real process pools, including chunk counts that do not
divide the scenario count and pools larger than the chunk list.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.uncertainty import LogNormal, Normal
from repro.errors import ChunkFailedError, ExecutionError
from repro.exec import (
    CheckpointStore,
    FaultRule,
    FaultSpec,
    Shard,
    ShardPlan,
    install_faults,
    kernel_name,
    resolve_kernel,
    run_sharded,
)
from repro.scenarios import (
    ScenarioGrid,
    example_service_mix,
    facebook_like_fleet,
    run_sweep,
    run_uncertain_sweep,
    sweep_fleet,
    sweep_provisioning,
)
from repro.tabular import Table
from repro.traces import (
    DEFAULT_POLICIES,
    canonical_workloads,
    evaluate_policies,
    profile_catalog,
)
from repro.uncertainty import (
    UncertainResult,
    sweep_fleet_uncertain,
    sweep_provisioning_uncertain,
    sweep_temporal_shifting_uncertain,
)

_BASE = facebook_like_fleet()

_FLEET_GRID = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.1, 0.25, 0.4, 0.5],
        "server.lifetime_years": [2.0, 3.0, 4.0],
    }
)

_UNCERTAIN_GRID = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.15, 0.3],
        "server.lifetime_years": [3.0, 4.0],
        "utilization": [Normal(0.45, 0.05)],
    }
)


def _assert_tables_identical(left: Table, right: Table) -> None:
    assert left.column_names == right.column_names
    assert left.num_rows == right.num_rows
    for name in left.column_names:
        assert left.column(name) == right.column(name), name


def _assert_uncertain_identical(
    left: UncertainResult, right: UncertainResult
) -> None:
    _assert_tables_identical(left.axes, right.axes)
    assert left.draws == right.draws and left.seed == right.seed
    assert left.metric_names == right.metric_names
    for metric in left.metric_names:
        assert np.array_equal(
            left.samples[metric], right.samples[metric], equal_nan=True
        ), metric
    # Quantile summaries are derived from the samples, so they must
    # collapse too — pinned explicitly because the CLI renders them.
    _assert_tables_identical(left.quantile_table(), right.quantile_table())


class TestShardPlan:
    def test_shards_cover_axis_exactly(self):
        for n in (1, 2, 5, 16, 17):
            for chunk in (1, 2, 3, 16, 40):
                shards = ShardPlan(num_scenarios=n, chunk_size=chunk).shards()
                assert shards[0].start == 0
                assert shards[-1].stop == n
                for before, after in zip(shards, shards[1:]):
                    assert before.stop == after.start
                assert all(shard.size <= chunk for shard in shards)

    def test_chunk_size_bounds_every_shard(self):
        plan = ShardPlan.plan(100, chunk_size=7, jobs=3)
        assert plan.chunk_size == 7
        assert max(shard.size for shard in plan) == 7

    def test_default_chunking_is_whole_axis_inline(self):
        plan = ShardPlan.plan(100)
        assert plan.num_chunks == 1

    def test_default_chunking_splits_across_jobs(self):
        plan = ShardPlan.plan(100, jobs=4)
        assert plan.num_chunks == 4
        assert max(shard.size for shard in plan) == 25

    def test_more_jobs_than_scenarios(self):
        plan = ShardPlan.plan(3, jobs=8)
        assert plan.num_chunks == 3

    def test_invalid_plans_raise(self):
        with pytest.raises(ExecutionError):
            ShardPlan.plan(0)
        with pytest.raises(ExecutionError):
            ShardPlan.plan(10, chunk_size=0)
        with pytest.raises(ExecutionError):
            ShardPlan.plan(10, jobs=0)
        with pytest.raises(ExecutionError):
            Shard(index=0, start=3, stop=3)

    @given(
        n=st.integers(1, 200),
        chunk=st.integers(1, 220),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, n, chunk):
        shards = ShardPlan(num_scenarios=n, chunk_size=chunk).shards()
        covered = [i for shard in shards for i in range(shard.start, shard.stop)]
        assert covered == list(range(n))


class TestKernelNames:
    def test_round_trip(self):
        from repro.scenarios.runner import _fleet_chunk

        assert resolve_kernel(kernel_name(_fleet_chunk)) is _fleet_chunk

    def test_lambda_rejected(self):
        with pytest.raises(ExecutionError):
            kernel_name(lambda payload, start, stop: None)

    def test_nested_function_rejected(self):
        def nested(payload, start, stop):
            return None

        with pytest.raises(ExecutionError):
            kernel_name(nested)

    def test_malformed_names_rejected(self):
        for name in ("", "no-colon", "mod:", ":fn", "mod:a.b"):
            with pytest.raises(ExecutionError):
                resolve_kernel(name)
        with pytest.raises(ExecutionError):
            resolve_kernel("not_a_module_anywhere:fn")
        with pytest.raises(ExecutionError):
            resolve_kernel("repro.exec:missing_kernel")

    def test_run_sharded_rejects_bad_jobs(self):
        from repro.scenarios.runner import _fleet_chunk

        with pytest.raises(ExecutionError):
            run_sharded(_fleet_chunk, None, ShardPlan.plan(4), jobs=0)


class TestDeterministicShardedEquivalence:
    @pytest.fixture(scope="class")
    def fleet_reference(self):
        return sweep_fleet(_BASE, _FLEET_GRID)

    @given(chunk=st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_fleet_any_chunk_size(self, fleet_reference, chunk):
        sharded = sweep_fleet(_BASE, _FLEET_GRID, chunk_size=chunk)
        _assert_tables_identical(sharded, fleet_reference)

    def test_fleet_process_pool(self, fleet_reference):
        for jobs, chunk in ((2, None), (2, 4), (3, 2), (8, 7)):
            sharded = sweep_fleet(
                _BASE, _FLEET_GRID, jobs=jobs, chunk_size=chunk
            )
            _assert_tables_identical(sharded, fleet_reference)

    @given(chunk=st.integers(1, 25))
    @settings(max_examples=12, deadline=None)
    def test_provisioning_any_chunk_size(self, chunk):
        workloads, general, server_types = example_service_mix()
        kwargs = dict(
            utilization_targets=[0.4, 0.5, 0.6, 0.7, 0.8],
            demand_scales=[0.5, 1.0, 2.0, 4.0],
        )
        reference = sweep_provisioning(
            workloads, general, server_types, **kwargs
        )
        sharded = sweep_provisioning(
            workloads, general, server_types, chunk_size=chunk, **kwargs
        )
        _assert_tables_identical(sharded, reference)

    @given(chunk=st.integers(1, 12))
    @settings(max_examples=8, deadline=None)
    def test_trace_evaluator_any_chunk_size(self, chunk):
        catalog = profile_catalog(48, stochastic_seeds=(0,))
        workloads = canonical_workloads()
        reference = evaluate_policies(
            catalog, workloads, DEFAULT_POLICIES, capacity_kw=2500.0
        )
        sharded = evaluate_policies(
            catalog,
            workloads,
            DEFAULT_POLICIES,
            capacity_kw=2500.0,
            chunk_size=chunk,
        )
        _assert_tables_identical(sharded, reference)

    def test_named_sweeps_sharded(self):
        for name in ("fleet_growth_lifetime", "provisioning_mix"):
            reference = run_sweep(name)
            _assert_tables_identical(
                run_sweep(name, chunk_size=3), reference
            )
            _assert_tables_identical(
                run_sweep(name, jobs=2, chunk_size=5), reference
            )


class TestUncertainShardedEquivalence:
    @pytest.fixture(scope="class")
    def fleet_reference(self):
        return sweep_fleet_uncertain(_BASE, _UNCERTAIN_GRID, draws=16, seed=7)

    @given(chunk=st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_fleet_any_chunk_size(self, fleet_reference, chunk):
        sharded = sweep_fleet_uncertain(
            _BASE, _UNCERTAIN_GRID, draws=16, seed=7, chunk_size=chunk
        )
        _assert_uncertain_identical(sharded, fleet_reference)

    def test_fleet_process_pool(self, fleet_reference):
        sharded = sweep_fleet_uncertain(
            _BASE, _UNCERTAIN_GRID, draws=16, seed=7, jobs=2, chunk_size=2
        )
        _assert_uncertain_identical(sharded, fleet_reference)

    @given(chunk=st.integers(1, 7), seed=st.integers(0, 2**10))
    @settings(max_examples=8, deadline=None)
    def test_provisioning_any_chunk_size(self, chunk, seed):
        workloads, general, server_types = example_service_mix()
        kwargs = dict(
            utilization_targets=[0.4, 0.6, 0.8],
            demand_scales=[LogNormal.from_median(1.0, 0.35), 2.0],
            draws=12,
            seed=seed,
        )
        reference = sweep_provisioning_uncertain(
            workloads, general, server_types, **kwargs
        )
        sharded = sweep_provisioning_uncertain(
            workloads, general, server_types, chunk_size=chunk, **kwargs
        )
        _assert_uncertain_identical(sharded, reference)

    @given(chunk=st.integers(1, 10))
    @settings(max_examples=6, deadline=None)
    def test_temporal_any_chunk_size(self, chunk):
        reference = sweep_temporal_shifting_uncertain(48, draws=2, seed=5)
        sharded = sweep_temporal_shifting_uncertain(
            48, draws=2, seed=5, chunk_size=chunk
        )
        _assert_uncertain_identical(sharded, reference)

    def test_named_uncertain_sweep_sharded(self):
        reference = run_uncertain_sweep("provisioning_mix", 8, 3)
        sharded = run_uncertain_sweep(
            "provisioning_mix", 8, 3, jobs=2, chunk_size=2
        )
        _assert_uncertain_identical(sharded, reference)


class TestFaultInjectedEquivalence:
    """Recovered faults must leave no trace in the results.

    Each test pins a deterministic failure schedule — which chunks
    fail, how, and on which attempts — and asserts the recovered sweep
    is element-identical to the clean monolithic reference. The fleet
    grid has 15 scenarios; ``chunk_size=4`` puts the shard starts at
    0, 4, 8, and 12.
    """

    @pytest.fixture(scope="class")
    def fleet_reference(self):
        return sweep_fleet(_BASE, _FLEET_GRID)

    def test_raise_schedule_inline(self, fleet_reference):
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(0, 8), attempts=(1,)),)
        )
        with install_faults(spec):
            sharded = sweep_fleet(_BASE, _FLEET_GRID, chunk_size=4, retries=1)
        _assert_tables_identical(sharded, fleet_reference)

    def test_crash_schedule_pool(self, fleet_reference):
        spec = FaultSpec(
            rules=(FaultRule(kind="crash", starts=(4,), attempts=(1,)),)
        )
        with install_faults(spec):
            sharded = sweep_fleet(
                _BASE, _FLEET_GRID, jobs=2, chunk_size=4, retries=2
            )
        _assert_tables_identical(sharded, fleet_reference)

    def test_hang_schedule_pool(self, fleet_reference):
        spec = FaultSpec(
            rules=(
                FaultRule(kind="hang", starts=(8,), attempts=(1,), seconds=30.0),
            )
        )
        with install_faults(spec):
            sharded = sweep_fleet(
                _BASE,
                _FLEET_GRID,
                jobs=2,
                chunk_size=4,
                retries=1,
                timeout=1.0,
            )
        _assert_tables_identical(sharded, fleet_reference)

    def test_corrupt_schedule_pool(self, fleet_reference):
        spec = FaultSpec(
            rules=(FaultRule(kind="corrupt", starts=(4, 12), attempts=(1,)),)
        )
        with install_faults(spec):
            sharded = sweep_fleet(
                _BASE, _FLEET_GRID, jobs=2, chunk_size=4, retries=1
            )
        _assert_tables_identical(sharded, fleet_reference)

    def test_chaos_schedule_pool(self, fleet_reference):
        starts = [
            shard.start
            for shard in ShardPlan(num_scenarios=15, chunk_size=4).shards()
        ]
        spec = FaultSpec.chaos(starts, seed=3, rate=0.75)
        assert spec, "chaos schedule at rate=0.75 must inject something"
        with install_faults(spec):
            sharded = sweep_fleet(
                _BASE, _FLEET_GRID, jobs=2, chunk_size=4, retries=1
            )
        _assert_tables_identical(sharded, fleet_reference)

    def test_env_var_schedule(self, fleet_reference, monkeypatch):
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(12,), attempts=(1,)),)
        )
        monkeypatch.setenv("REPRO_FAULTS", spec.to_json())
        sharded = sweep_fleet(_BASE, _FLEET_GRID, chunk_size=4, retries=1)
        _assert_tables_identical(sharded, fleet_reference)

    def test_uncertain_sweep_under_faults(self):
        reference = sweep_fleet_uncertain(
            _BASE, _UNCERTAIN_GRID, draws=16, seed=7
        )
        spec = FaultSpec(
            rules=(FaultRule(kind="crash", starts=(0,), attempts=(1,)),)
        )
        with install_faults(spec):
            sharded = sweep_fleet_uncertain(
                _BASE,
                _UNCERTAIN_GRID,
                draws=16,
                seed=7,
                jobs=2,
                chunk_size=2,
                retries=1,
            )
        _assert_uncertain_identical(sharded, reference)

    def test_skip_mode_partial_matches_reference_rows(self, fleet_reference):
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(4,), attempts=None),)
        )
        with install_faults(spec):
            partial, report = sweep_fleet(
                _BASE, _FLEET_GRID, chunk_size=4, on_error="skip"
            )
        assert report.shard_ranges() == [(4, 8)]
        assert report.skipped_scenarios() == 4
        kept = [i for i in range(15) if not 4 <= i < 8]
        assert partial.num_rows == len(kept)
        for name in fleet_reference.column_names:
            full = fleet_reference.column(name)
            assert partial.column(name) == [full[i] for i in kept], name


def _logging_square_chunk(payload, start, stop):
    """Counting kernel: records every chunk call before computing it."""
    log_path, values = payload
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{start}:{stop}\n")
    return [value * value for value in values[start:stop]]


def _concat(chunks):
    """Flatten list chunks."""
    return [value for chunk in chunks for value in chunk]


class TestCheckpointResume:
    def test_resume_recomputes_only_unfinished_chunks(self, tmp_path):
        log = tmp_path / "calls.log"
        log.touch()
        values = list(range(12))
        payload = (str(log), values)
        plan = ShardPlan(num_scenarios=12, chunk_size=3)
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(6,), attempts=None),)
        )
        store = CheckpointStore(
            tmp_path / "cache", spec_parts=("resume-test",), consume=False
        )
        with pytest.raises(ChunkFailedError):
            run_sharded(
                _logging_square_chunk,
                payload,
                plan,
                combine=_concat,
                retries=1,
                checkpoint=store,
                faults=spec,
            )
        # The inline runner aborts at the failing chunk (whose injected
        # fault fires before the kernel), so exactly the chunks before
        # it completed and were checkpointed.
        assert log.read_text().splitlines() == ["0:3", "3:6"]

        log.write_text("")
        resume = CheckpointStore(
            tmp_path / "cache", spec_parts=("resume-test",), consume=True
        )
        result = run_sharded(
            _logging_square_chunk,
            payload,
            plan,
            combine=_concat,
            checkpoint=resume,
        )
        assert result == [value * value for value in values]
        # The kernel-call counter proves only unfinished chunks reran.
        assert log.read_text().splitlines() == ["6:9", "9:12"]

        # A fully successful run discards its checkpoints, so a later
        # resume of the same spec starts clean.
        leftover = CheckpointStore(
            tmp_path / "cache", spec_parts=("resume-test",), consume=True
        )
        for start in (0, 3, 6, 9):
            assert leftover.get(start, start + 3) == (False, None)

    def test_resume_result_is_bit_identical(self, tmp_path):
        reference = sweep_fleet(_BASE, _FLEET_GRID)
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(8,), attempts=None),)
        )
        store = CheckpointStore(
            tmp_path, spec_parts=("fleet-resume",), consume=False
        )
        with install_faults(spec):
            with pytest.raises(ChunkFailedError):
                sweep_fleet(
                    _BASE,
                    _FLEET_GRID,
                    chunk_size=4,
                    retries=1,
                    checkpoint=store,
                )
        resume = CheckpointStore(
            tmp_path, spec_parts=("fleet-resume",), consume=True
        )
        resumed = sweep_fleet(
            _BASE, _FLEET_GRID, chunk_size=4, checkpoint=resume
        )
        _assert_tables_identical(resumed, reference)


class TestCliResume:
    def test_sweep_resume_after_injected_failure(self, tmp_path):
        import repro

        src_dir = Path(repro.__file__).resolve().parents[1]
        env = os.environ.copy()
        env["PYTHONPATH"] = str(src_dir) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        base_cmd = [
            sys.executable,
            "-m",
            "repro",
            "sweep",
            "fleet_growth_lifetime",
            "--chunk-size",
            "4",
        ]
        cache = str(tmp_path / "cache")

        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(8,), attempts=None),)
        )
        faulted_env = dict(env, REPRO_FAULTS=spec.to_json())
        first = subprocess.run(
            base_cmd + ["--cache-dir", cache],
            env=faulted_env,
            capture_output=True,
            text=True,
        )
        assert first.returncode != 0, first.stderr

        resumed = subprocess.run(
            base_cmd + ["--cache-dir", cache, "--resume"],
            env=env,
            capture_output=True,
            text=True,
        )
        assert resumed.returncode == 0, resumed.stderr

        clean = subprocess.run(
            base_cmd + ["--cache-dir", str(tmp_path / "clean")],
            env=env,
            capture_output=True,
            text=True,
        )
        assert clean.returncode == 0, clean.stderr
        assert resumed.stdout == clean.stdout

    def test_resume_without_cache_is_an_error(self, tmp_path):
        import repro

        src_dir = Path(repro.__file__).resolve().parents[1]
        env = os.environ.copy()
        env["PYTHONPATH"] = str(src_dir) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "sweep",
                "fleet_growth_lifetime",
                "--resume",
                "--no-cache",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 2
        assert "--resume" in result.stderr


class TestSweepSpecCompatibility:
    def test_legacy_zero_arg_builders_still_run(self):
        # SweepSpec predates the execution layer; registered specs with
        # zero-arg builders must keep working at default settings.
        from repro.scenarios.runner import SWEEPS, SweepSpec

        legacy = SweepSpec(
            name="legacy_test_spec",
            description="a pre-exec-layer spec",
            build=lambda: Table({"a": [1.0]}),
            build_uncertain=None,
        )
        SWEEPS[legacy.name] = legacy
        try:
            assert run_sweep(legacy.name).column("a") == [1.0]
        finally:
            del SWEEPS[legacy.name]
