"""Sharded execution must be bit-identical to monolithic execution.

The contract of :mod:`repro.exec`: for *any* ``chunk_size``/``jobs``
partition, every sweep — deterministic and uncertain — produces
element-identical results (values, row order, axis columns, quantiles)
to the monolithic reference. Hypothesis drives the chunk geometry over
the inline path (``jobs=1``, which exercises the full
shard-plan/chunk-kernel/concat machinery); a smaller set of pinned
cases drives real process pools, including chunk counts that do not
divide the scenario count and pools larger than the chunk list.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.uncertainty import LogNormal, Normal
from repro.errors import ExecutionError
from repro.exec import Shard, ShardPlan, kernel_name, resolve_kernel, run_sharded
from repro.scenarios import (
    ScenarioGrid,
    example_service_mix,
    facebook_like_fleet,
    run_sweep,
    run_uncertain_sweep,
    sweep_fleet,
    sweep_provisioning,
)
from repro.tabular import Table
from repro.traces import (
    DEFAULT_POLICIES,
    canonical_workloads,
    evaluate_policies,
    profile_catalog,
)
from repro.uncertainty import (
    UncertainResult,
    sweep_fleet_uncertain,
    sweep_provisioning_uncertain,
    sweep_temporal_shifting_uncertain,
)

_BASE = facebook_like_fleet()

_FLEET_GRID = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.1, 0.25, 0.4, 0.5],
        "server.lifetime_years": [2.0, 3.0, 4.0],
    }
)

_UNCERTAIN_GRID = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.15, 0.3],
        "server.lifetime_years": [3.0, 4.0],
        "utilization": [Normal(0.45, 0.05)],
    }
)


def _assert_tables_identical(left: Table, right: Table) -> None:
    assert left.column_names == right.column_names
    assert left.num_rows == right.num_rows
    for name in left.column_names:
        assert left.column(name) == right.column(name), name


def _assert_uncertain_identical(
    left: UncertainResult, right: UncertainResult
) -> None:
    _assert_tables_identical(left.axes, right.axes)
    assert left.draws == right.draws and left.seed == right.seed
    assert left.metric_names == right.metric_names
    for metric in left.metric_names:
        assert np.array_equal(
            left.samples[metric], right.samples[metric], equal_nan=True
        ), metric
    # Quantile summaries are derived from the samples, so they must
    # collapse too — pinned explicitly because the CLI renders them.
    _assert_tables_identical(left.quantile_table(), right.quantile_table())


class TestShardPlan:
    def test_shards_cover_axis_exactly(self):
        for n in (1, 2, 5, 16, 17):
            for chunk in (1, 2, 3, 16, 40):
                shards = ShardPlan(num_scenarios=n, chunk_size=chunk).shards()
                assert shards[0].start == 0
                assert shards[-1].stop == n
                for before, after in zip(shards, shards[1:]):
                    assert before.stop == after.start
                assert all(shard.size <= chunk for shard in shards)

    def test_chunk_size_bounds_every_shard(self):
        plan = ShardPlan.plan(100, chunk_size=7, jobs=3)
        assert plan.chunk_size == 7
        assert max(shard.size for shard in plan) == 7

    def test_default_chunking_is_whole_axis_inline(self):
        plan = ShardPlan.plan(100)
        assert plan.num_chunks == 1

    def test_default_chunking_splits_across_jobs(self):
        plan = ShardPlan.plan(100, jobs=4)
        assert plan.num_chunks == 4
        assert max(shard.size for shard in plan) == 25

    def test_more_jobs_than_scenarios(self):
        plan = ShardPlan.plan(3, jobs=8)
        assert plan.num_chunks == 3

    def test_invalid_plans_raise(self):
        with pytest.raises(ExecutionError):
            ShardPlan.plan(0)
        with pytest.raises(ExecutionError):
            ShardPlan.plan(10, chunk_size=0)
        with pytest.raises(ExecutionError):
            ShardPlan.plan(10, jobs=0)
        with pytest.raises(ExecutionError):
            Shard(index=0, start=3, stop=3)

    @given(
        n=st.integers(1, 200),
        chunk=st.integers(1, 220),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, n, chunk):
        shards = ShardPlan(num_scenarios=n, chunk_size=chunk).shards()
        covered = [i for shard in shards for i in range(shard.start, shard.stop)]
        assert covered == list(range(n))


class TestKernelNames:
    def test_round_trip(self):
        from repro.scenarios.runner import _fleet_chunk

        assert resolve_kernel(kernel_name(_fleet_chunk)) is _fleet_chunk

    def test_lambda_rejected(self):
        with pytest.raises(ExecutionError):
            kernel_name(lambda payload, start, stop: None)

    def test_nested_function_rejected(self):
        def nested(payload, start, stop):
            return None

        with pytest.raises(ExecutionError):
            kernel_name(nested)

    def test_malformed_names_rejected(self):
        for name in ("", "no-colon", "mod:", ":fn", "mod:a.b"):
            with pytest.raises(ExecutionError):
                resolve_kernel(name)
        with pytest.raises(ExecutionError):
            resolve_kernel("not_a_module_anywhere:fn")
        with pytest.raises(ExecutionError):
            resolve_kernel("repro.exec:missing_kernel")

    def test_run_sharded_rejects_bad_jobs(self):
        from repro.scenarios.runner import _fleet_chunk

        with pytest.raises(ExecutionError):
            run_sharded(_fleet_chunk, None, ShardPlan.plan(4), jobs=0)


class TestDeterministicShardedEquivalence:
    @pytest.fixture(scope="class")
    def fleet_reference(self):
        return sweep_fleet(_BASE, _FLEET_GRID)

    @given(chunk=st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_fleet_any_chunk_size(self, fleet_reference, chunk):
        sharded = sweep_fleet(_BASE, _FLEET_GRID, chunk_size=chunk)
        _assert_tables_identical(sharded, fleet_reference)

    def test_fleet_process_pool(self, fleet_reference):
        for jobs, chunk in ((2, None), (2, 4), (3, 2), (8, 7)):
            sharded = sweep_fleet(
                _BASE, _FLEET_GRID, jobs=jobs, chunk_size=chunk
            )
            _assert_tables_identical(sharded, fleet_reference)

    @given(chunk=st.integers(1, 25))
    @settings(max_examples=12, deadline=None)
    def test_provisioning_any_chunk_size(self, chunk):
        workloads, general, server_types = example_service_mix()
        kwargs = dict(
            utilization_targets=[0.4, 0.5, 0.6, 0.7, 0.8],
            demand_scales=[0.5, 1.0, 2.0, 4.0],
        )
        reference = sweep_provisioning(
            workloads, general, server_types, **kwargs
        )
        sharded = sweep_provisioning(
            workloads, general, server_types, chunk_size=chunk, **kwargs
        )
        _assert_tables_identical(sharded, reference)

    @given(chunk=st.integers(1, 12))
    @settings(max_examples=8, deadline=None)
    def test_trace_evaluator_any_chunk_size(self, chunk):
        catalog = profile_catalog(48, stochastic_seeds=(0,))
        workloads = canonical_workloads()
        reference = evaluate_policies(
            catalog, workloads, DEFAULT_POLICIES, capacity_kw=2500.0
        )
        sharded = evaluate_policies(
            catalog,
            workloads,
            DEFAULT_POLICIES,
            capacity_kw=2500.0,
            chunk_size=chunk,
        )
        _assert_tables_identical(sharded, reference)

    def test_named_sweeps_sharded(self):
        for name in ("fleet_growth_lifetime", "provisioning_mix"):
            reference = run_sweep(name)
            _assert_tables_identical(
                run_sweep(name, chunk_size=3), reference
            )
            _assert_tables_identical(
                run_sweep(name, jobs=2, chunk_size=5), reference
            )


class TestUncertainShardedEquivalence:
    @pytest.fixture(scope="class")
    def fleet_reference(self):
        return sweep_fleet_uncertain(_BASE, _UNCERTAIN_GRID, draws=16, seed=7)

    @given(chunk=st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_fleet_any_chunk_size(self, fleet_reference, chunk):
        sharded = sweep_fleet_uncertain(
            _BASE, _UNCERTAIN_GRID, draws=16, seed=7, chunk_size=chunk
        )
        _assert_uncertain_identical(sharded, fleet_reference)

    def test_fleet_process_pool(self, fleet_reference):
        sharded = sweep_fleet_uncertain(
            _BASE, _UNCERTAIN_GRID, draws=16, seed=7, jobs=2, chunk_size=2
        )
        _assert_uncertain_identical(sharded, fleet_reference)

    @given(chunk=st.integers(1, 7), seed=st.integers(0, 2**10))
    @settings(max_examples=8, deadline=None)
    def test_provisioning_any_chunk_size(self, chunk, seed):
        workloads, general, server_types = example_service_mix()
        kwargs = dict(
            utilization_targets=[0.4, 0.6, 0.8],
            demand_scales=[LogNormal.from_median(1.0, 0.35), 2.0],
            draws=12,
            seed=seed,
        )
        reference = sweep_provisioning_uncertain(
            workloads, general, server_types, **kwargs
        )
        sharded = sweep_provisioning_uncertain(
            workloads, general, server_types, chunk_size=chunk, **kwargs
        )
        _assert_uncertain_identical(sharded, reference)

    @given(chunk=st.integers(1, 10))
    @settings(max_examples=6, deadline=None)
    def test_temporal_any_chunk_size(self, chunk):
        reference = sweep_temporal_shifting_uncertain(48, draws=2, seed=5)
        sharded = sweep_temporal_shifting_uncertain(
            48, draws=2, seed=5, chunk_size=chunk
        )
        _assert_uncertain_identical(sharded, reference)

    def test_named_uncertain_sweep_sharded(self):
        reference = run_uncertain_sweep("provisioning_mix", 8, 3)
        sharded = run_uncertain_sweep(
            "provisioning_mix", 8, 3, jobs=2, chunk_size=2
        )
        _assert_uncertain_identical(sharded, reference)


class TestSweepSpecCompatibility:
    def test_legacy_zero_arg_builders_still_run(self):
        # SweepSpec predates the execution layer; registered specs with
        # zero-arg builders must keep working at default settings.
        from repro.scenarios.runner import SWEEPS, SweepSpec

        legacy = SweepSpec(
            name="legacy_test_spec",
            description="a pre-exec-layer spec",
            build=lambda: Table({"a": [1.0]}),
            build_uncertain=None,
        )
        SWEEPS[legacy.name] = legacy
        try:
            assert run_sweep(legacy.name).column("a") == [1.0]
        finally:
            del SWEEPS[legacy.name]
