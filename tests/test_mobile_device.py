"""Tests for the whole-phone break-even model (Figure 10 anchors)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.grids import grid_by_name
from repro.units import CarbonIntensity
from repro.mobile.device import MobilePhone, pixel3


class TestICCapex:
    def test_pixel3_uses_component_split(self, phone: MobilePhone):
        # Half of the 44.8 kg production stage.
        assert phone.ic_capex.kilograms == pytest.approx(22.4)

    def test_fallback_is_half_production(self):
        from repro.data.devices import device_by_name
        from repro.mobile.inference import InferenceSimulator
        from repro.mobile.processors import SNAPDRAGON_845

        lca = device_by_name("pixel_3a")  # no component split
        other = MobilePhone(
            lca=lca, soc=SNAPDRAGON_845, simulator=InferenceSimulator()
        )
        assert other.ic_capex.kilograms == pytest.approx(
            lca.production_carbon.kilograms / 2.0
        )


class TestBreakEvenAnchors:
    @pytest.mark.parametrize(
        "model,processor,expected_images",
        [
            ("resnet50", "cpu", 200e6),
            ("inception_v3", "cpu", 150e6),
            ("mobilenet_v3", "cpu", 5e9),
            ("mobilenet_v3", "dsp", 10e9),
        ],
    )
    def test_break_even_images(self, phone, model, processor, expected_images):
        assert phone.break_even_images(model, processor) == pytest.approx(
            expected_images, rel=0.01
        )

    def test_break_even_days_cpu(self, phone):
        assert phone.break_even_days("mobilenet_v3", "cpu") == pytest.approx(
            350.0, rel=0.01
        )

    def test_break_even_days_dsp_near_1200(self, phone):
        assert phone.break_even_days("mobilenet_v3", "dsp") == pytest.approx(
            1200.0, rel=0.05
        )

    def test_dsp_break_even_beyond_lifetime(self, phone):
        assert not phone.amortizes_within_lifetime("mobilenet_v3", "dsp")

    def test_resnet_amortizes_within_lifetime(self, phone):
        assert phone.amortizes_within_lifetime("resnet50", "cpu")


class TestGridSensitivity:
    def test_cleaner_grid_pushes_break_even_out(self):
        dirty = pixel3(grid=grid_by_name("india").intensity)
        clean = pixel3(grid=grid_by_name("iceland").intensity)
        assert clean.break_even_days("mobilenet_v3", "cpu") > dirty.break_even_days(
            "mobilenet_v3", "cpu"
        )

    def test_break_even_scales_inversely_with_intensity(self):
        us = pixel3(grid=grid_by_name("united_states").intensity)
        iceland = pixel3(grid=grid_by_name("iceland").intensity)
        ratio = iceland.break_even_days(
            "mobilenet_v3", "cpu"
        ) / us.break_even_days("mobilenet_v3", "cpu")
        assert ratio == pytest.approx(380.0 / 28.0, rel=1e-6)


class TestAmortizationSchedule:
    def test_schedule_consistent_with_days(self, phone):
        schedule = phone.amortization("mobilenet_v3", "cpu")
        assert schedule.break_even_days() == pytest.approx(
            phone.break_even_days("mobilenet_v3", "cpu")
        )

    def test_carbon_per_inference_positive(self, phone):
        assert phone.carbon_per_inference("resnet50", "gpu").grams > 0.0


class TestArrayBreakEven:
    """Break-even methods accept array grids without float coercion.

    The scalar anchors are pinned exactly — the array plumbing must
    not move them — and each array element must be bit-identical to a
    scalar call at the same intensity.
    """

    _INTENSITIES = [200.0, 401.1, 700.0]

    def test_scalar_results_pinned_unchanged(self, phone: MobilePhone):
        days = phone.break_even_days("mobilenet_v3", "cpu")
        assert isinstance(days, float)
        assert days == pytest.approx(349.76792897912236, rel=1e-12)
        assert round(days) == 350
        images = phone.break_even_images("mobilenet_v3", "cpu")
        assert isinstance(images, float)
        assert round(images / 1e9, 1) == 5.0
        verdict = phone.amortizes_within_lifetime("resnet50", "cpu")
        assert isinstance(verdict, bool)

    def test_array_grid_elementwise_matches_scalar(self):
        base = pixel3()
        array_grid = CarbonIntensity.g_per_kwh(np.array(self._INTENSITIES))
        batched = pixel3(grid=array_grid)
        days = batched.break_even_days("mobilenet_v3", "cpu")
        images = batched.break_even_images("mobilenet_v3", "cpu")
        assert isinstance(days, np.ndarray)
        assert isinstance(images, np.ndarray)
        for index, intensity in enumerate(self._INTENSITIES):
            scalar = pixel3(grid=CarbonIntensity.g_per_kwh(intensity))
            assert days[index] == scalar.break_even_days(
                "mobilenet_v3", "cpu"
            )
            assert images[index] == scalar.break_even_images(
                "mobilenet_v3", "cpu"
            )

    def test_array_amortization_verdict_is_elementwise(self):
        array_grid = CarbonIntensity.g_per_kwh(np.array(self._INTENSITIES))
        batched = pixel3(grid=array_grid)
        verdict = batched.amortizes_within_lifetime("mobilenet_v3", "cpu")
        assert isinstance(verdict, np.ndarray)
        assert verdict.dtype == np.bool_
        for index, intensity in enumerate(self._INTENSITIES):
            scalar = pixel3(grid=CarbonIntensity.g_per_kwh(intensity))
            assert bool(verdict[index]) == scalar.amortizes_within_lifetime(
                "mobilenet_v3", "cpu"
            )
