"""Unit tests for the uncertainty engine: draws, results, sweeps.

The statistical invariants live in test_uncertain_properties.py and the
scalar-reference pinning in test_uncertain_sweep_equivalence.py; this
file covers the engine's contracts — shapes, orderings, axis labels,
validation errors, and the CLI-facing registry plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.uncertainty import Fixed, LogNormal, Normal, Uniform
from repro.errors import SimulationError
from repro.scenarios import (
    SWEEPS,
    ScenarioGrid,
    facebook_like_fleet,
    run_uncertain_sweep,
    sweep_fleet,
    sweep_provisioning,
)
from repro.tabular import Table
from repro.uncertainty import (
    DrawMatrix,
    UncertainResult,
    build_draw_matrix,
    expand_records,
    quantile_column,
    split_scenario,
    sweep_fleet_uncertain,
    sweep_temporal_shifting_uncertain,
)


class TestDrawMatrix:
    def test_split_scenario(self):
        fixed, uncertain = split_scenario(
            {"a": 1.0, "b": Normal(2.0, 0.1), "c": "label"}
        )
        assert fixed == {"a": 1.0, "c": "label"}
        assert list(uncertain) == ["b"]

    def test_shapes_and_names(self):
        records = [
            {"a": Normal(1.0, 0.1), "b": 2.0},
            {"a": 1.5, "b": 2.0},
        ]
        matrix = build_draw_matrix(records, draws=8, seed=0)
        assert matrix.names == ("a",)
        assert matrix.values["a"].shape == (2, 8)
        # The fixed-in-one-scenario parameter broadcasts constant rows.
        assert np.all(matrix.values["a"][1] == 1.5)

    def test_overrides_cell(self):
        records = [{"a": Fixed(3.0)}]
        matrix = build_draw_matrix(records, draws=4, seed=0)
        assert matrix.overrides(0, 2) == {"a": 3.0}
        with pytest.raises(SimulationError):
            matrix.overrides(0, 4)
        with pytest.raises(SimulationError):
            matrix.overrides(1, 0)

    def test_expand_records_is_scenario_major_draw_minor(self):
        records = [
            {"a": Uniform(0.0, 1.0), "tag": "x"},
            {"a": Uniform(5.0, 6.0), "tag": "y"},
        ]
        matrix = build_draw_matrix(records, draws=3, seed=1)
        expanded = expand_records(records, matrix)
        assert len(expanded) == 6
        assert [cell["tag"] for cell in expanded] == ["x"] * 3 + ["y"] * 3
        for index in range(3):
            assert expanded[index]["a"] == float(matrix.values["a"][0, index])

    def test_validation(self):
        with pytest.raises(SimulationError):
            build_draw_matrix([], draws=4)
        with pytest.raises(SimulationError):
            build_draw_matrix([{"a": Normal(1, 0.1)}], draws=0)
        with pytest.raises(SimulationError):
            build_draw_matrix([{"a": 1.0}, {"b": 1.0}], draws=4)
        # Non-numeric value under an uncertain name is rejected.
        with pytest.raises(SimulationError):
            build_draw_matrix(
                [{"a": Normal(1, 0.1)}, {"a": "oops"}], draws=4
            )
        with pytest.raises(SimulationError):
            DrawMatrix(
                names=("a",),
                values={"a": np.zeros((2, 3))},
                draws=4,
                seed=0,
                num_scenarios=2,
            )


class TestUncertainResult:
    def _result(self):
        return UncertainResult(
            axes=Table({"x": [1.0, 2.0]}),
            samples={"m": np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])},
            draws=3,
            seed=0,
        )

    def test_quantile_column_names(self):
        assert quantile_column(5.0) == "p05"
        assert quantile_column(50) == "p50"
        assert quantile_column(97.5) == "p97_5"
        with pytest.raises(SimulationError):
            quantile_column(101.0)

    def test_quantile_table_carries_axes_and_bands(self):
        table = self._result().quantile_table()
        assert table.column_names == [
            "x", "m_mean", "m_p05", "m_p50", "m_p95",
        ]
        assert table.column("m_p50") == [2.0, 5.0]

    def test_metric_summary_rows(self):
        summary = self._result().metric_summary(1)
        assert summary.column("metric") == ["m"]
        assert summary.column("p50") == [5.0]

    def test_validation(self):
        with pytest.raises(SimulationError):
            UncertainResult(
                axes=Table({"x": [1.0]}), samples={}, draws=3, seed=0
            )
        with pytest.raises(SimulationError):
            UncertainResult(
                axes=Table({"x": [1.0]}),
                samples={"m": np.zeros((2, 3))},
                draws=3,
                seed=0,
            )
        result = self._result()
        with pytest.raises(SimulationError):
            result.samples_for("nope")
        with pytest.raises(SimulationError):
            result.distribution("m", 2)
        with pytest.raises(SimulationError):
            result.band("m", low=95.0, high=5.0)
        with pytest.raises(SimulationError):
            result.quantile_table(quantiles=(95.0, 5.0))


class TestSweepPlumbing:
    def test_axes_render_distribution_labels(self):
        grid = ScenarioGrid(
            **{"annual_growth": [0.1],
               "utilization": [Normal(0.5, 0.1)]}
        )
        result = sweep_fleet_uncertain(
            facebook_like_fleet(), grid, draws=4, seed=0
        )
        assert result.axes.column("annual_growth") == [0.1]
        assert result.axes.column("utilization") == [
            "Normal(mean=0.5, std=0.1)"
        ]

    def test_deterministic_sweeps_reject_distribution_axes(self):
        grid = ScenarioGrid(utilization=[Normal(0.5, 0.1)])
        with pytest.raises(SimulationError, match="--draws"):
            sweep_fleet(facebook_like_fleet(), grid)
        from repro.scenarios.presets import example_service_mix

        workloads, general, server_types = example_service_mix()
        with pytest.raises(SimulationError, match="--draws"):
            sweep_provisioning(
                workloads,
                general,
                server_types,
                utilization_targets=[Normal(0.5, 0.1)],
            )

    def test_temporal_shifting_axes_and_shape(self):
        result = sweep_temporal_shifting_uncertain(draws=2, seed=0)
        from repro.data.grids import region_names

        regions = region_names()
        assert result.num_scenarios == len(regions) * 2 * 3
        assert result.draws == 2
        # Row order is (region, workload, policy)-major.
        assert result.axes.column("region")[:6] == [regions[0]] * 6
        with pytest.raises(SimulationError):
            sweep_temporal_shifting_uncertain(hours=24)
        with pytest.raises(SimulationError):
            sweep_temporal_shifting_uncertain(draws=0)

    def test_expand_records_matches_the_fleet_sweep_expansion(self):
        # expand_records and sweep_fleet_uncertain's OverridePlan path
        # implement the same scenario-major/draw-minor contract; this
        # pins them to each other so neither can drift off the
        # `s * draws + d` axis convention alone.
        from repro.datacenter.fleet import simulate_fleet
        from repro.scenarios import apply_overrides

        base = facebook_like_fleet()
        records = [
            {"annual_growth": 0.1, "utilization": Normal(0.4, 0.05)},
            {"annual_growth": 0.4, "utilization": Uniform(0.3, 0.7)},
        ]
        draws = 3
        sweep = sweep_fleet_uncertain(base, records, draws=draws, seed=9)
        matrix = build_draw_matrix(records, draws, seed=9)
        expanded = expand_records(records, matrix)
        for index, cell in enumerate(expanded):
            scenario, draw = divmod(index, draws)
            final = simulate_fleet(apply_overrides(base, cell))[-1]
            assert (
                sweep.samples_for("capex_kt")[scenario, draw]
                == final.capex.grams / 1e6 / 1e3
            )

    def test_non_finite_metric_cells_raise_like_the_scalar_guard(self):
        from repro.uncertainty.sweeps import _reshape_metrics

        table = Table({"m": [1.0, float("inf"), 2.0, 3.0]})
        with pytest.raises(SimulationError, match="scenario 0, draw 1"):
            _reshape_metrics(table, ("m",), 2, 2)
        # Designed sentinels pass through the allowlist.
        samples = _reshape_metrics(
            table, ("m",), 2, 2, allow_non_finite=("m",)
        )
        assert np.isinf(samples["m"][0, 1])

    def test_lognormal_median_validation(self):
        with pytest.raises(SimulationError):
            LogNormal.from_median(0.0, 0.5)
        with pytest.raises(SimulationError):
            LogNormal(0.0, -0.1)

    def test_named_sweeps_have_uncertain_variants(self):
        for spec in SWEEPS.values():
            assert spec.build_uncertain is not None, spec.name

    def test_run_uncertain_sweep_round_trip(self):
        result = run_uncertain_sweep("provisioning_mix", draws=4, seed=0)
        assert isinstance(result, UncertainResult)
        assert result.draws == 4
        with pytest.raises(SimulationError):
            run_uncertain_sweep("nope", draws=4)
