"""Property-based invariants of the portfolio fleet sweeps.

Three guarantees the exactly-rounded aggregation buys, driven by
hypothesis: fleet totals are invariant under any permutation of the
device axis; distribution-tagged axes with zero variance collapse the
uncertain sweep to the deterministic one, draw for draw; and any
chunk geometry reproduces the monolithic run bit for bit (the
portfolio cousin of ``test_sharded_equivalence.py``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.uncertainty import Fixed, Triangular
from repro.portfolio import (
    default_catalog,
    simulate_device_batch,
    sweep_portfolio,
    sweep_portfolio_uncertain,
)
from repro.portfolio.sweep import PORTFOLIO_METRICS
from repro.scenarios import ScenarioGrid
from repro.tabular import Table

_CATALOG = default_catalog()

_GRID = ScenarioGrid(
    **{
        "node_shift": [0.0, 1.0, 2.0],
        "lifetime_scale": [1.0, 1.5],
    }
)


def _tables_identical(left: Table, right: Table) -> bool:
    return (
        left.column_names == right.column_names
        and left.num_rows == right.num_rows
        and all(
            left.column(name) == right.column(name)
            for name in left.column_names
        )
    )


@pytest.fixture(scope="module")
def reference():
    return sweep_portfolio(_CATALOG, _GRID)


class TestPermutationInvariance:
    @given(order=st.permutations(list(range(len(_CATALOG)))))
    @settings(max_examples=25, deadline=None)
    def test_fleet_totals_ignore_device_order(self, order):
        shuffled = tuple(_CATALOG[index] for index in order)
        assert _tables_identical(
            sweep_portfolio(shuffled, _GRID), sweep_portfolio(_CATALOG, _GRID)
        )

    @given(order=st.permutations(list(range(len(_CATALOG)))))
    @settings(max_examples=10, deadline=None)
    def test_uncertain_samples_ignore_device_order(self, order):
        grid = ScenarioGrid(
            **{
                "node_shift": [0.0, 1.0],
                "lifetime_scale": [Triangular(0.8, 1.0, 1.4)],
            }
        )
        shuffled = tuple(_CATALOG[index] for index in order)
        base = sweep_portfolio_uncertain(_CATALOG, grid, draws=6, seed=3)
        other = sweep_portfolio_uncertain(shuffled, grid, draws=6, seed=3)
        for metric in PORTFOLIO_METRICS:
            assert np.array_equal(
                base.samples[metric], other.samples[metric]
            ), metric

    def test_batch_rows_follow_input_order(self):
        reversed_catalog = tuple(reversed(_CATALOG))
        table = simulate_device_batch(reversed_catalog)
        assert table.column("device") == [
            spec.name for spec in reversed_catalog
        ]


class TestZeroVarianceCollapse:
    @given(
        draws=st.integers(1, 12),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_fixed_axes_reproduce_deterministic_sweep(self, draws, seed):
        tagged = ScenarioGrid(
            **{
                "node_shift": [0.0, 1.0],
                "defect_density_scale": [Fixed(1.0)],
                "lifetime_scale": [Fixed(1.2)],
            }
        )
        plain = ScenarioGrid(
            **{
                "node_shift": [0.0, 1.0],
                "defect_density_scale": [1.0],
                "lifetime_scale": [1.2],
            }
        )
        uncertain = sweep_portfolio_uncertain(
            _CATALOG, tagged, draws=draws, seed=seed
        )
        deterministic = sweep_portfolio(_CATALOG, plain)
        for metric in PORTFOLIO_METRICS:
            samples = uncertain.samples[metric]
            column = np.asarray(deterministic.column(metric))
            assert samples.shape == (2, draws)
            assert (samples == column[:, None]).all(), metric


class TestChunkGeometryInvariance:
    @given(chunk=st.integers(1, 12))
    @settings(max_examples=12, deadline=None)
    def test_any_chunk_size_bit_identical(self, reference, chunk):
        sharded = sweep_portfolio(_CATALOG, _GRID, chunk_size=chunk)
        assert _tables_identical(sharded, reference)

    @given(chunk=st.integers(1, 10), seed=st.integers(0, 2**10))
    @settings(max_examples=8, deadline=None)
    def test_uncertain_chunks_bit_identical(self, chunk, seed):
        grid = ScenarioGrid(
            **{
                "node_shift": [0.0, 2.0],
                "lifetime_scale": [Triangular(0.8, 1.0, 1.4)],
            }
        )
        base = sweep_portfolio_uncertain(_CATALOG, grid, draws=5, seed=seed)
        sharded = sweep_portfolio_uncertain(
            _CATALOG, grid, draws=5, seed=seed, chunk_size=chunk
        )
        for metric in PORTFOLIO_METRICS:
            assert np.array_equal(
                base.samples[metric], sharded.samples[metric]
            ), metric
        assert _tables_identical(
            base.quantile_table(), sharded.quantile_table()
        )
