"""End-to-end tests over every experiment driver.

Each experiment must (a) produce non-empty tables, (b) pass every
paper-anchor check it declares, and (c) render to text without error.
These tests are the repository's statement that the paper's evaluation
reproduces.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENT_IDS,
    get_experiment,
    run_experiment,
)
from repro.experiments.result import Check, ExperimentResult


@pytest.fixture(scope="module")
def results() -> dict[str, ExperimentResult]:
    return {exp_id: run_experiment(exp_id) for exp_id in EXPERIMENT_IDS}


def test_registry_covers_every_paper_artifact():
    figures = {f"fig{n:02d}" for n in (1, 2, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14)}
    tables = {f"tab{n:02d}" for n in (1, 2, 3, 4)}
    assert figures | tables <= set(EXPERIMENT_IDS)


def test_unknown_experiment_rejected():
    with pytest.raises(ExperimentError):
        get_experiment("fig99")


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_experiment_produces_tables(results, exp_id):
    result = results[exp_id]
    assert result.experiment_id == exp_id
    assert result.tables
    for table in result.tables.values():
        assert table.num_rows > 0


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_all_paper_checks_pass(results, exp_id):
    result = results[exp_id]
    failed = result.failed_checks()
    detail = ", ".join(
        f"{check.name} (expected {check.expected:.4g}, got {check.measured:.4g})"
        for check in failed
    )
    assert not failed, f"{exp_id}: {detail}"


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_render_is_nonempty_text(results, exp_id):
    text = results[exp_id].render()
    assert results[exp_id].title in text
    assert "paper vs measured" in text


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_checks_table_matches_checks(results, exp_id):
    result = results[exp_id]
    table = result.checks_table()
    assert table.num_rows == len(result.checks)
    assert all(table.column("ok"))


def test_result_check_lookup(results):
    result = results["fig10"]
    check = result.check("mobilenet_v3_cpu_days")
    assert check.ok
    with pytest.raises(ExperimentError):
        result.check("nonexistent")


def test_result_table_lookup(results):
    result = results["fig14"]
    assert result.table("sweep").num_rows == 7
    with pytest.raises(ExperimentError):
        result.table("nonexistent")


class TestCheckType:
    def test_deviation_relative(self):
        check = Check("x", expected=100.0, measured=105.0, rel_tolerance=0.10)
        assert check.deviation == pytest.approx(0.05)
        assert check.ok

    def test_zero_expected_uses_absolute(self):
        check = Check("x", expected=0.0, measured=0.0, rel_tolerance=0.0)
        assert check.ok

    def test_boolean_checks(self):
        assert Check.boolean("claim", True).ok
        assert not Check.boolean("claim", False).ok

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ExperimentError):
            Check("x", expected=1.0, measured=1.0, rel_tolerance=-0.1)


class TestHeadlineNumbers:
    """The paper's four contribution bullets, asserted directly."""

    def test_iphone_manufacturing_shift_49_to_86(self, results):
        pies = results["fig02"].table("opex_capex_pies")
        assert pies.row(0)["capex"] == pytest.approx(0.49, abs=0.01)
        assert pies.row(1)["capex"] == pytest.approx(0.86, abs=0.01)

    def test_pixel3_three_year_amortization(self, results):
        table = results["fig10"].table("break_even")
        mnv3_dsp = table.where(
            lambda r: r["model"] == "mobilenet_v3" and r["processor"] == "dsp"
        ).row(0)
        assert mnv3_dsp["break_even_days"] > 3 * 365

    def test_facebook_23x_capex_ratio(self, results):
        check = results["fig11"].check("facebook_2019_scope3_to_scope2_ratio")
        assert check.measured == pytest.approx(23.0, rel=0.02)

    def test_renewables_leave_manufacturing_dominant(self, results):
        assert results["fig13"].check("intel_wind_manufacturing_over_80pct").ok
        assert results["fig14"].check("reduction_at_64x").ok
