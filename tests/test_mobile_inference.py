"""Tests for the mobile SoC and inference simulator."""

from __future__ import annotations

import pytest

from repro.data.measurements import PIXEL3_MEASUREMENTS, measurement
from repro.data.workloads import cnn_by_name
from repro.errors import CalibrationError, DataValidationError, SimulationError
from repro.mobile.inference import InferenceSimulator
from repro.mobile.processors import SNAPDRAGON_845, MobileProcessor, MobileSoC


class TestProcessors:
    def test_soc_has_three_units(self):
        assert set(SNAPDRAGON_845.processors) == {"cpu", "gpu", "dsp"}

    def test_effective_rates_below_peak(self):
        for unit in SNAPDRAGON_845.processors.values():
            assert unit.effective_gflops < unit.peak_gflops
            assert unit.effective_bandwidth_gbs < unit.memory_bandwidth_gbs

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataValidationError):
            MobileProcessor("npu", "npu", 100.0, 30.0, 2.0)

    def test_kind_key_mismatch_rejected(self):
        unit = MobileProcessor("x", "cpu", 10.0, 10.0, 1.0)
        with pytest.raises(DataValidationError):
            MobileSoC("soc", "10nm", 90.0, processors={"gpu": unit})

    def test_missing_unit_lookup_raises(self):
        with pytest.raises(DataValidationError):
            MobileSoC(
                "soc", "10nm", 90.0,
                processors={"cpu": MobileProcessor("x", "cpu", 10.0, 10.0, 1.0)},
            ).processor("dsp")

    def test_efficiency_bounds_enforced(self):
        with pytest.raises(DataValidationError):
            MobileProcessor("x", "cpu", 10.0, 10.0, 1.0, compute_efficiency=0.0)


class TestCalibratedEstimates:
    def test_calibrated_cells_reproduce_measurements(self, simulator):
        for record in PIXEL3_MEASUREMENTS:
            estimate = simulator.estimate(record.model, record.processor)
            assert estimate.calibrated
            assert estimate.latency_s == pytest.approx(record.latency_s)
            assert estimate.power.watts_value == pytest.approx(record.power_w)

    def test_energy_is_power_times_latency(self, simulator):
        estimate = simulator.estimate("resnet50", "cpu")
        assert estimate.energy_per_inference.joules == pytest.approx(
            estimate.power.watts_value * estimate.latency_s
        )

    def test_throughput_inverse_of_latency(self, simulator):
        estimate = simulator.estimate("mobilenet_v2", "dsp")
        assert estimate.throughput_ips == pytest.approx(1.0 / estimate.latency_s)

    def test_paper_latency_ratios(self, simulator):
        inception = simulator.latency_s("inception_v3", "cpu")
        mnv2_cpu = simulator.latency_s("mobilenet_v2", "cpu")
        mnv2_dsp = simulator.latency_s("mobilenet_v2", "dsp")
        assert inception / mnv2_cpu == pytest.approx(17.0, rel=0.01)
        assert mnv2_cpu / mnv2_dsp == pytest.approx(3.2, rel=0.01)

    def test_paper_energy_ratio_mnv3_cpu_dsp(self, simulator):
        cpu = simulator.energy_per_inference("mobilenet_v3", "cpu").joules
        dsp = simulator.energy_per_inference("mobilenet_v3", "dsp").joules
        assert cpu / dsp == pytest.approx(2.0, rel=0.01)

    def test_duplicate_calibration_rejected(self):
        record = measurement("resnet50", "cpu")
        with pytest.raises(CalibrationError):
            InferenceSimulator(calibration=[record, record])

    def test_calibrated_pairs_cover_table(self, simulator):
        assert len(simulator.calibrated_pairs()) == len(PIXEL3_MEASUREMENTS)


class TestRooflineModel:
    def test_uncalibrated_estimate_falls_back_to_roofline(self):
        simulator = InferenceSimulator(calibration=[])
        estimate = simulator.estimate("resnet50", "cpu")
        assert not estimate.calibrated
        assert estimate.latency_s > 0.0

    def test_roofline_respects_compute_bound(self, simulator):
        model = cnn_by_name("resnet50")
        unit = SNAPDRAGON_845.processor("cpu")
        latency = simulator.roofline_latency_s(model, "cpu")
        assert latency >= model.gflops / unit.peak_gflops

    def test_measured_latency_never_beats_roofline(self, simulator):
        # Calibration residual >= 1 means measurements respect physics.
        for model_name, processor in simulator.calibrated_pairs():
            assert simulator.calibration_residual(model_name, processor) >= 1.0

    def test_residual_requires_calibration(self):
        simulator = InferenceSimulator(calibration=[])
        with pytest.raises(CalibrationError):
            simulator.calibration_residual("resnet50", "cpu")

    def test_bigger_model_is_slower_on_roofline(self, simulator):
        small = simulator.roofline_latency_s(cnn_by_name("mobilenet_v2"), "cpu")
        big = simulator.roofline_latency_s(cnn_by_name("inception_v3"), "cpu")
        assert big > small


class TestRunsAndTables:
    def test_run_scales_linearly(self, simulator):
        duration_1, energy_1 = simulator.run("mobilenet_v3", "cpu", 100)
        duration_2, energy_2 = simulator.run("mobilenet_v3", "cpu", 200)
        assert duration_2 == pytest.approx(2.0 * duration_1)
        assert energy_2.joules == pytest.approx(2.0 * energy_1.joules)

    def test_run_rejects_nonpositive_count(self, simulator):
        with pytest.raises(SimulationError):
            simulator.run("mobilenet_v3", "cpu", 0)

    def test_comparison_table_shape(self, simulator):
        rows = simulator.comparison_table(
            ("resnet50", "mobilenet_v3"), ("cpu", "dsp")
        )
        assert len(rows) == 4
        assert {row["model"] for row in rows} == {"resnet50", "mobilenet_v3"}
