"""The observability layer: metrics, the recorder, stats, cache stats.

Unit coverage for :mod:`repro.obs` plus the surfaces that ride on it —
per-cache :class:`~repro.exec.CacheStats`, the ``repro stats``
subcommand, ``--trace-out``/``--metrics``, and ``repro --version``.
The cross-layer contracts (bit-identity under tracing, fault-schedule
oracle agreement) live in ``tests/test_obs_trace_correctness.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ObservabilityError
from repro.exec import ResultCache
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_RECORDER,
    TraceRecorder,
    active_recorder,
    install_recorder,
    load_trace,
    phase_table,
    render_stats,
    trace_summary,
)
from repro.obs.recorder import TRACE_FORMAT_VERSION, _NULL_SPAN


class TestMetrics:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)

    def test_gauge_last_value_wins(self):
        gauge = Gauge()
        assert gauge.value is None
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_histogram_summary_includes_p99(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["p99"] == pytest.approx(99.01)
        assert summary["p95"] <= summary["p99"] <= summary["max"]

    def test_empty_histogram_summary(self):
        # Exactly {"count": 0} — no percentile keys appear for empty
        # distributions, which `repro stats` and /metrics rely on.
        assert Histogram().summary() == {"count": 0}

    def test_registry_creates_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_registry_rejects_kind_collision(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x")

    def test_registry_rejects_empty_name(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("")

    def test_summary_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("z.late").inc()
        registry.counter("a.early").inc(2)
        registry.gauge("rate").set(10.0)
        registry.gauge("unset")  # never set -> omitted
        registry.histogram("lat").observe(0.5)
        summary = registry.summary()
        assert list(summary["counters"]) == ["a.early", "z.late"]
        assert summary["gauges"] == {"rate": 10.0}
        assert summary["histograms"]["lat"]["count"] == 1
        json.dumps(summary)  # must be JSON-serializable as-is


class TestNullRecorder:
    def test_defaults_to_null(self):
        assert active_recorder() is NULL_RECORDER
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.metrics is None

    def test_span_is_shared_noop(self):
        span = NULL_RECORDER.span("sweep", name="x")
        assert span is _NULL_SPAN
        with span as inner:
            inner.note(rows=3)  # discarded, no error
        assert NULL_RECORDER.event("cache", op="hit") is None
        assert NULL_RECORDER.record_worker_events([{"kind": "x"}]) is None
        assert NULL_RECORDER.close() is None

    def test_install_restores_previous(self):
        outer = TraceRecorder()
        inner = TraceRecorder()
        with install_recorder(outer):
            assert active_recorder() is outer
            with install_recorder(inner):
                assert active_recorder() is inner
            assert active_recorder() is outer
            with install_recorder(None):  # explicitly off for a block
                assert active_recorder() is NULL_RECORDER
            assert active_recorder() is outer
        assert active_recorder() is NULL_RECORDER


class TestTraceRecorder:
    def test_events_are_sequenced_and_stamped(self):
        recorder = TraceRecorder()
        recorder.event("cache", scope="result", op="hit")
        recorder.event("retry", stream=0, attempt=1, delay_s=0.1)
        first, second = recorder.events
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["v"] == TRACE_FORMAT_VERSION
        assert first["type"] == "event" and first["kind"] == "cache"
        assert first["parent"] is None
        assert first["t"] >= 0.0 and first["ts"] > 0

    def test_span_nesting_tracks_parents(self):
        recorder = TraceRecorder()
        with recorder.span("sweep", name="s"):
            recorder.event("cache", scope="result", op="miss")
            with recorder.span("wave", index=0):
                pass
        kinds = [line["kind"] for line in recorder.events]
        assert kinds == ["cache", "wave", "sweep"]  # spans written at exit
        cache, wave, sweep = recorder.events
        assert sweep["parent"] is None
        assert cache["parent"] == sweep["span"]
        assert wave["parent"] == sweep["span"]
        assert wave["status"] == "ok" and wave["dur_s"] >= 0.0

    def test_note_lands_on_span_line(self):
        recorder = TraceRecorder()
        with recorder.span("sweep", name="s") as span:
            span.note(rows=42)
        assert recorder.events[-1]["rows"] == 42

    def test_failed_span_is_marked_error(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            with recorder.span("sweep", name="s"):
                raise ValueError("boom")
        assert recorder.events[-1]["status"] == "error"

    def test_worker_events_are_tagged(self):
        recorder = TraceRecorder()
        recorder.record_worker_events(
            [{"kind": "chunk_worker", "start": 0, "dur_s": 0.01}]
        )
        recorder.record_worker_events(None)  # tolerated
        (line,) = recorder.events
        assert line["proc"] == "worker" and line["kind"] == "chunk_worker"

    def test_metrics_fed_synchronously(self):
        recorder = TraceRecorder()
        recorder.event("cache", scope="result", op="hit")
        recorder.event("cache", scope="result", op="miss")
        recorder.event("retry", stream=0, attempt=1, delay_s=0.25)
        recorder.event("pool", op="rebuild", wave=1)
        recorder.event(
            "attempt", scope="chunk", stream=0, attempt=1, outcome="error"
        )
        recorder.event(
            "attempt",
            scope="chunk",
            stream=0,
            attempt=2,
            outcome="ok",
            dur_s=0.02,
        )
        with recorder.span("wave", index=0):
            pass
        summary = recorder.summary()
        assert summary["counters"] == {
            "attempt.error": 1,
            "attempt.total": 2,
            "cache.hit": 1,
            "cache.miss": 1,
            "pool.rebuilds": 1,
            "pool.waves": 1,
            "retry.attempts": 1,
        }
        assert summary["histograms"]["retry.delay_s"]["count"] == 1
        assert summary["histograms"]["chunk.duration"]["count"] == 1

    def test_sweep_span_sets_throughput_gauge(self):
        recorder = TraceRecorder()
        with recorder.span("sweep", name="s", mode="point") as span:
            span.note(rows=100)
        assert recorder.summary()["gauges"]["sweep.scenarios_per_sec"] > 0

    def test_writes_jsonl_flushed_per_line(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"  # parent dirs created lazily
        recorder = TraceRecorder(path)
        assert recorder.path == path
        recorder.event("cache", scope="result", op="hit")
        # Readable before close: a killed run leaves a usable trace.
        assert len(load_trace(path)) == 1
        with recorder.span("run", command="sweep"):
            pass
        recorder.close()
        lines = load_trace(path)
        assert [line["seq"] for line in lines] == [0, 1]
        assert lines == recorder.events

    def test_memory_only_recorder_has_no_path(self):
        recorder = TraceRecorder()
        assert recorder.path is None
        recorder.event("cache", scope="result", op="hit")
        recorder.close()  # nothing to flush; must not raise
        assert len(recorder.events) == 1


class TestLoadTrace:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            load_trace(tmp_path / "absent.jsonl")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match="malformed"):
            load_trace(path)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "list.jsonl"
        path.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(ObservabilityError, match="objects"):
            load_trace(path)

    def test_newer_format_version_refused(self, tmp_path):
        path = tmp_path / "future.jsonl"
        payload = {"type": "event", "kind": "cache", "v": TRACE_FORMAT_VERSION + 1}
        path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        with pytest.raises(ObservabilityError, match="newer"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"type": "event", "kind": "x"}\n\n', encoding="utf-8")
        assert len(load_trace(path)) == 1


class TestStats:
    def _recorder(self, tmp_path):
        recorder = TraceRecorder(tmp_path / "trace.jsonl")
        with recorder.span("sweep", name="s", mode="point") as span:
            recorder.event("cache", scope="result", op="miss")
            recorder.event(
                "attempt",
                scope="chunk",
                stream=0,
                attempt=1,
                outcome="ok",
                dur_s=0.01,
                rows=5,
            )
            span.note(rows=5)
        recorder.close()
        return recorder

    def test_replay_matches_live_summary(self, tmp_path):
        recorder = self._recorder(tmp_path)
        assert trace_summary(load_trace(recorder.path)) == recorder.summary()

    def test_phase_table_includes_synthetic_chunk_phase(self, tmp_path):
        recorder = self._recorder(tmp_path)
        table = phase_table(load_trace(recorder.path))
        phases = table.column("phase")
        assert "sweep" in phases and "chunk" in phases

    def test_render_stats_sections(self, tmp_path):
        recorder = self._recorder(tmp_path)
        text = render_stats(recorder.path)
        assert "Phase latency (seconds)" in text
        assert "Counters and gauges" in text
        assert "Distributions" in text
        assert "cache.miss" in text


class TestCacheStats:
    def test_hits_misses_writes(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "a" * 64
        assert cache.get(key, default="fallback") == "fallback"
        assert cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.corrupt, stats.writes) == (
            1, 1, 0, 1,
        )

    def test_corrupt_entry_warns_and_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "b" * 64
        assert cache.put(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"\x80\x04 not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupt entry"):
            assert cache.get(key, default="fallback") == "fallback"
        stats = cache.stats
        assert stats.corrupt == 1
        assert stats.misses == 1  # corrupt also counts as a miss

    def test_cache_events_reach_installed_recorder(self, tmp_path):
        recorder = TraceRecorder()
        cache = ResultCache(tmp_path, scope="checkpoint")
        key = "c" * 64
        with install_recorder(recorder):
            cache.get(key)
            cache.put(key, 1)
            cache.get(key)
        ops = [
            (line["scope"], line["op"])
            for line in recorder.events
            if line["kind"] == "cache"
        ]
        assert ops == [
            ("checkpoint", "miss"),
            ("checkpoint", "write"),
            ("checkpoint", "hit"),
        ]


class TestObsCli:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_sweep_trace_out_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "sweep.jsonl"
        # --no-cache: a warm result cache would satisfy the sweep
        # without running any chunks, leaving no attempt events.
        assert (
            main(
                [
                    "sweep",
                    "fleet_growth_lifetime",
                    "--no-cache",
                    "--trace-out",
                    str(trace),
                    "--metrics",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "metrics:" in captured.err
        payload = json.loads(captured.err.split("metrics:", 1)[1])
        assert payload["counters"]["attempt.total"] >= 1
        lines = load_trace(trace)
        kinds = {line["kind"] for line in lines}
        assert {"run", "sweep", "sharded_run", "attempt"} <= kinds
        run_line = [line for line in lines if line["kind"] == "run"][-1]
        assert run_line["command"] == "sweep"

    def test_metrics_without_trace_out(self, capsys):
        assert main(["run", "tab02", "--metrics"]) == 0
        assert "metrics:" in capsys.readouterr().err

    def test_stats_command(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert (
            main(["sweep", "provisioning_mix", "--trace-out", str(trace)]) == 0
        )
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Phase latency (seconds)" in out
        assert "Counters and gauges" in out

    def test_stats_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_malformed_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("garbage\n", encoding="utf-8")
        assert main(["stats", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_empty_trace_renders_zero_counts(self, tmp_path, capsys):
        # Regression pin: an existing-but-empty trace (a run killed
        # before its first line) is a zero-count report, not an error.
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(0 lines)" in out
        assert "Phase latency (seconds)" in out

    def test_stats_header_only_trace_exits_0(self, tmp_path, capsys):
        # A trace holding only the run's opening span — no events, no
        # counters — still renders (phase table only) and exits 0.
        path = tmp_path / "header.jsonl"
        recorder = TraceRecorder(path)
        with recorder.span("run"):
            pass
        recorder.close()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(1 lines)" in out
        assert "run" in out
