"""Tests for trace analysis (bursts, downsampling) and Table utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError, TableError
from repro.mobile.inference import InferenceSimulator
from repro.mobile.power_monitor import MonsoonSimulator, PowerTrace
from repro.tabular import Table


class TestBurstDetection:
    def test_counts_separated_bursts(self):
        simulator = InferenceSimulator()
        estimate = simulator.estimate("resnet50", "cpu")
        monsoon = MonsoonSimulator(noise_fraction=0.0)
        trace = monsoon.inference_burst(
            estimate, num_inferences=5, idle_power_w=0.2, inter_arrival_s=0.1
        )
        bursts = trace.detect_bursts(threshold_w=1.0)
        assert len(bursts) == 5

    def test_back_to_back_is_one_burst(self):
        simulator = InferenceSimulator()
        estimate = simulator.estimate("resnet50", "cpu")
        monsoon = MonsoonSimulator(noise_fraction=0.0)
        trace = monsoon.inference_burst(estimate, 5, idle_power_w=0.2)
        assert len(trace.detect_bursts(threshold_w=1.0)) == 1

    def test_burst_durations_match_latency(self):
        simulator = InferenceSimulator()
        estimate = simulator.estimate("inception_v3", "cpu")
        monsoon = MonsoonSimulator(noise_fraction=0.0)
        trace = monsoon.inference_burst(
            estimate, 3, idle_power_w=0.2, inter_arrival_s=0.2
        )
        for start, end in trace.detect_bursts(threshold_w=1.0):
            assert end - start == pytest.approx(estimate.latency_s, rel=0.02)

    def test_no_bursts_below_threshold(self):
        trace = PowerTrace(np.full(100, 0.5), 1000.0)
        assert trace.detect_bursts(threshold_w=1.0) == []

    def test_trace_ending_mid_burst(self):
        samples = np.concatenate([np.zeros(50), np.full(50, 5.0)])
        trace = PowerTrace(samples, 100.0)
        bursts = trace.detect_bursts(threshold_w=1.0)
        assert len(bursts) == 1
        assert bursts[0][1] == pytest.approx(0.99)


class TestDownsample:
    def test_preserves_average_power(self):
        rng = np.random.default_rng(5)
        trace = PowerTrace(rng.uniform(1.0, 3.0, size=5000), 5000.0)
        small = trace.downsample(10)
        assert small.average_power.watts_value == pytest.approx(
            trace.average_power.watts_value, rel=1e-3
        )

    def test_reduces_sample_rate(self):
        trace = PowerTrace(np.ones(1000), 5000.0)
        assert trace.downsample(10).sample_rate_hz == 500.0

    def test_factor_one_is_identity(self):
        trace = PowerTrace(np.ones(100), 1000.0)
        assert trace.downsample(1) is trace

    def test_invalid_factors(self):
        trace = PowerTrace(np.ones(10), 100.0)
        with pytest.raises(SimulationError):
            trace.downsample(0)
        with pytest.raises(SimulationError):
            trace.downsample(9)


class TestTableConcat:
    def test_stacks_rows_in_order(self):
        first = Table({"a": [1, 2]})
        second = Table({"a": [3]})
        combined = Table.concat([first, second])
        assert combined.column("a") == [1, 2, 3]

    def test_column_mismatch_rejected(self):
        with pytest.raises(TableError):
            Table.concat([Table({"a": [1]}), Table({"b": [1]})])

    def test_empty_list_rejected(self):
        with pytest.raises(TableError):
            Table.concat([])

    def test_single_table_roundtrip(self):
        table = Table({"a": [1, 2], "b": ["x", "y"]})
        assert Table.concat([table]) == table

    def test_array_fast_path_preserves_dtypes(self):
        first = Table(
            {"f": [1.0, 2.0], "i": [1, 2], "b": [True, False], "s": ["a", "bb"]}
        )
        second = Table({"f": [3.0], "i": [3], "b": [True], "s": ["ccc"]})
        combined = Table.concat([first, second])
        assert combined._columns["f"].dtype == np.float64
        assert combined._columns["i"].dtype == np.int64
        assert combined._columns["b"].dtype == np.bool_
        assert combined._columns["s"].dtype.kind == "U"
        assert combined.column("f") == [1.0, 2.0, 3.0]
        assert combined.column("i") == [1, 2, 3]
        assert combined.column("s") == ["a", "bb", "ccc"]

    def test_fast_path_result_is_independent_of_inputs(self):
        first = Table({"a": [1.0, 2.0]})
        combined = Table.concat([first, Table({"a": [3.0]})])
        combined._columns["a"][0] = 99.0
        assert first.column("a") == [1.0, 2.0]

    def test_mixed_kind_columns_fall_back_to_sniffing(self):
        # int chunk + float chunk must merge exactly like the
        # value-level path: a mixed int/float list stays a list so the
        # ints survive round-tripping.
        combined = Table.concat([Table({"a": [1, 2]}), Table({"a": [3.5]})])
        assert isinstance(combined._columns["a"], list)
        assert combined.column("a") == [1, 2, 3.5]

    def test_object_fallback_preserved(self):
        rich = Table({"a": [{"k": 1}, None]})
        combined = Table.concat([rich, Table({"a": ["x"]})])
        assert combined.column("a") == [{"k": 1}, None, "x"]

    def test_array_and_list_chunks_merge(self):
        array_backed = Table({"a": [1.0, 2.0]})
        list_backed = Table({"a": [None]})
        combined = Table.concat([array_backed, list_backed])
        assert combined.column("a") == [1.0, 2.0, None]


class TestTableDescribe:
    def test_summarizes_numeric_columns_only(self):
        table = Table({"v": [1.0, 2.0, 3.0], "label": ["a", "b", "c"]})
        summary = table.describe()
        assert summary.column("column") == ["v"]
        row = summary.row(0)
        assert row["min"] == 1.0 and row["max"] == 3.0 and row["mean"] == 2.0

    def test_booleans_excluded(self):
        table = Table({"flag": [True, False], "v": [1, 2]})
        assert table.describe().column("column") == ["v"]

    def test_all_text_rejected(self):
        with pytest.raises(TableError):
            Table({"label": ["a", "b"]}).describe()
