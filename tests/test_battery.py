"""Tests for the battery and usage-profile model."""

from __future__ import annotations

import pytest

from repro.data.devices import device_by_name
from repro.data.grids import US_GRID
from repro.errors import SimulationError
from repro.mobile.battery import (
    DEFAULT_SMARTPHONE_PROFILE,
    Battery,
    UsageProfile,
    annual_wall_energy,
    use_phase_bottom_up,
)
from repro.units import Energy, Power


@pytest.fixture
def battery() -> Battery:
    return Battery(capacity_wh=11.0, charge_efficiency=0.75, cycle_life=800)


class TestBattery:
    def test_wall_energy_includes_charging_losses(self, battery):
        wall = battery.wall_energy_for(Energy.watt_hours(75.0))
        assert wall.watt_hours_value == pytest.approx(100.0)

    def test_perfect_charger_is_identity(self):
        ideal = Battery(capacity_wh=10.0, charge_efficiency=1.0)
        assert ideal.wall_energy_for(Energy.kwh(1.0)).kilowatt_hours == 1.0

    def test_cycles_for_capacity(self, battery):
        assert battery.cycles_for(Energy.watt_hours(22.0)) == pytest.approx(2.0)

    def test_cycle_lifetime(self, battery):
        # One full cycle per day exhausts 800 cycles in ~2.2 years.
        annual = Energy.watt_hours(11.0 * 365.0)
        assert battery.lifetime_years_by_cycles(annual) == pytest.approx(
            800.0 / 365.0
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            Battery(capacity_wh=0.0)
        with pytest.raises(SimulationError):
            Battery(capacity_wh=10.0, charge_efficiency=0.0)
        with pytest.raises(SimulationError):
            Battery(capacity_wh=10.0, cycle_life=0)


class TestUsageProfile:
    def test_daily_energy_combines_active_and_standby(self):
        profile = UsageProfile(
            active_hours_per_day=4.0,
            active_power=Power.watts(2.0),
            standby_power=Power.watts(0.1),
        )
        expected_wh = 4.0 * 2.0 + 20.0 * 0.1
        assert profile.daily_device_energy().watt_hours_value == pytest.approx(
            expected_wh
        )

    def test_annual_scales_daily(self):
        profile = DEFAULT_SMARTPHONE_PROFILE
        assert profile.annual_device_energy().joules == pytest.approx(
            profile.daily_device_energy().joules * 365.0
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            UsageProfile(25.0, Power.watts(1.0), Power.watts(0.1))
        with pytest.raises(SimulationError):
            UsageProfile(4.0, Power.watts(0.1), Power.watts(1.0))


class TestBottomUpUsePhase:
    def test_default_profile_lands_near_iphone_lca(self, battery):
        """The bottom-up use phase must land within ~35% of the curated
        iPhone 11 use stage — the cross-validation this module exists
        for."""
        lca = device_by_name("iphone_11")
        bottom_up = use_phase_bottom_up(
            DEFAULT_SMARTPHONE_PROFILE, battery, US_GRID.intensity,
            lca.lifetime_years,
        )
        assert bottom_up.kilograms == pytest.approx(
            lca.use_carbon.kilograms, rel=0.35
        )

    def test_annual_wall_energy_magnitude(self, battery):
        # Heavy smartphone use is single-digit kWh per year at the wall.
        wall = annual_wall_energy(DEFAULT_SMARTPHONE_PROFILE, battery)
        assert 5.0 <= wall.kilowatt_hours <= 15.0

    def test_cleaner_grid_scales_linearly(self, battery):
        from repro.units import CarbonIntensity

        dirty = use_phase_bottom_up(
            DEFAULT_SMARTPHONE_PROFILE, battery,
            CarbonIntensity.g_per_kwh(800.0), 3.0,
        )
        clean = use_phase_bottom_up(
            DEFAULT_SMARTPHONE_PROFILE, battery,
            CarbonIntensity.g_per_kwh(80.0), 3.0,
        )
        assert dirty.grams == pytest.approx(10.0 * clean.grams)

    def test_lifetime_must_be_positive(self, battery):
        with pytest.raises(SimulationError):
            use_phase_bottom_up(
                DEFAULT_SMARTPHONE_PROFILE, battery, US_GRID.intensity, 0.0
            )
