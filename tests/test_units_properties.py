"""Property-based tests for the quantity algebra."""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.units import Carbon, CarbonIntensity, Energy, Power, hours

finite = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)
# Zero or a value far enough from the subnormal range that products
# with the other operands cannot underflow — denormal products lose the
# precision that relative-tolerance closeness checks rely on.
non_negative = st.one_of(
    st.just(0.0),
    st.floats(
        min_value=1e-12, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
)


@given(finite, finite)
def test_energy_addition_commutes(a, b):
    left = Energy(a) + Energy(b)
    right = Energy(b) + Energy(a)
    assert left.joules == right.joules


@given(finite, finite, finite)
def test_energy_addition_associates(a, b, c):
    left = (Energy(a) + Energy(b)) + Energy(c)
    right = Energy(a) + (Energy(b) + Energy(c))
    assert math.isclose(left.joules, right.joules, rel_tol=1e-12, abs_tol=1e-6)


@given(positive)
def test_energy_kwh_roundtrip(value):
    assert math.isclose(Energy.kwh(value).kilowatt_hours, value, rel_tol=1e-12)


@given(positive)
def test_energy_unit_ladder_consistent(value):
    assert math.isclose(
        Energy.gwh(value).kilowatt_hours, value * 1e6, rel_tol=1e-12
    )
    assert math.isclose(
        Energy.twh(value).gigawatt_hours, value * 1e3, rel_tol=1e-12
    )


@given(positive, positive)
def test_power_energy_linearity_in_time(watts, duration):
    power = Power.watts(watts)
    single = power.energy_over(duration)
    double = power.energy_over(2.0 * duration)
    assert math.isclose(double.joules, 2.0 * single.joules, rel_tol=1e-12)


@given(positive, positive, positive)
def test_power_energy_additive_in_power(w1, w2, duration):
    combined = Power.watts(w1 + w2).energy_over(duration)
    split = Power.watts(w1).energy_over(duration) + Power.watts(w2).energy_over(
        duration
    )
    assert math.isclose(combined.joules, split.joules, rel_tol=1e-9)


@given(non_negative, positive)
def test_intensity_carbon_scales_with_energy(g_per_kwh, kwh):
    grid = CarbonIntensity.g_per_kwh(g_per_kwh)
    one = grid.carbon_for(Energy.kwh(kwh))
    three = grid.carbon_for(Energy.kwh(3.0 * kwh))
    assert math.isclose(three.grams, 3.0 * one.grams, rel_tol=1e-9)


@given(non_negative, non_negative, positive)
def test_cleaner_grid_never_emits_more(g1, g2, kwh):
    lo, hi = sorted((g1, g2))
    energy = Energy.kwh(kwh)
    clean = CarbonIntensity.g_per_kwh(lo).carbon_for(energy)
    dirty = CarbonIntensity.g_per_kwh(hi).carbon_for(energy)
    assert clean.grams <= dirty.grams + 1e-9


@given(finite)
def test_carbon_unit_ladder(value):
    assert math.isclose(Carbon.kg(value).grams, value * 1e3, rel_tol=1e-12, abs_tol=1e-9)
    assert math.isclose(
        Carbon.tonnes(value).kilograms, value * 1e3, rel_tol=1e-12, abs_tol=1e-9
    )


@given(finite, st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
def test_carbon_scalar_distributes(value, scale):
    left = (Carbon(value) + Carbon(value)) * scale
    right = Carbon(value) * scale + Carbon(value) * scale
    assert math.isclose(left.grams, right.grams, rel_tol=1e-9, abs_tol=1e-6)


@given(positive)
def test_hours_consistent_with_power_chain(watts):
    # P watts for 1 hour must equal P watt-hours.
    energy = Power.watts(watts).energy_over(hours(1))
    assert math.isclose(energy.watt_hours_value, watts, rel_tol=1e-12)
