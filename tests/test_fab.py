"""Tests for the fab substrate: nodes, yields, wafers, abatement."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.grids import TAIWAN_GRID
from repro.data.tsmc import tsmc_wafer_model
from repro.errors import DataValidationError, SimulationError
from repro.fab.abatement import AbatementPolicy
from repro.fab.process import NODE_ROADMAP, node_by_name
from repro.fab.wafer import WAFER_COMPONENTS, WaferBreakdown, WaferFootprintModel
from repro.fab.yields import (
    dies_per_wafer,
    good_dies_per_wafer,
    murphy_yield,
    poisson_yield,
)
from repro.units import Carbon


class TestProcessRoadmap:
    def test_lookup_by_name(self):
        assert node_by_name("7nm").feature_nm == 7.0

    def test_unknown_node_raises(self):
        with pytest.raises(DataValidationError):
            node_by_name("1nm")

    def test_roadmap_ordered_new_to_small(self):
        features = [node.feature_nm for node in NODE_ROADMAP]
        assert features == sorted(features, reverse=True)

    def test_energy_per_area_rises_with_advancement(self):
        energies = [node.energy_kwh_per_cm2 for node in NODE_ROADMAP]
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_gas_per_area_rises_with_advancement(self):
        gases = [node.gas_kg_per_cm2 for node in NODE_ROADMAP]
        assert all(a < b for a, b in zip(gases, gases[1:]))

    def test_volume_years_monotone(self):
        years = [node.first_volume_year for node in NODE_ROADMAP]
        assert years == sorted(years)


class TestYieldModels:
    def test_zero_defects_is_perfect_yield(self):
        assert poisson_yield(100.0, 0.0) == pytest.approx(1.0)
        assert murphy_yield(100.0, 0.0) == pytest.approx(1.0)

    def test_yield_decreases_with_area(self):
        assert murphy_yield(400.0, 0.1) < murphy_yield(100.0, 0.1)
        assert poisson_yield(400.0, 0.1) < poisson_yield(100.0, 0.1)

    def test_yield_decreases_with_defect_density(self):
        assert murphy_yield(100.0, 0.3) < murphy_yield(100.0, 0.1)

    def test_murphy_at_least_poisson(self):
        # Murphy's triangular distribution is more forgiving.
        for area in (50.0, 100.0, 400.0, 800.0):
            assert murphy_yield(area, 0.1) >= poisson_yield(area, 0.1)

    def test_poisson_matches_closed_form(self):
        assert poisson_yield(100.0, 0.1) == pytest.approx(math.exp(-0.1))

    def test_yields_within_unit_interval(self):
        for area in (1.0, 100.0, 1000.0):
            for density in (0.0, 0.1, 1.0):
                assert 0.0 < murphy_yield(area, density) <= 1.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            murphy_yield(0.0, 0.1)
        with pytest.raises(SimulationError):
            poisson_yield(100.0, -0.1)


class TestDiesPerWafer:
    def test_more_dies_for_smaller_dies(self):
        assert dies_per_wafer(300.0, 50.0) > dies_per_wafer(300.0, 100.0)

    def test_known_magnitude(self):
        # ~100 mm^2 dies on a 300 mm wafer: several hundred candidates.
        count = dies_per_wafer(300.0, 100.0)
        assert 500 <= count <= 700

    def test_giant_die_yields_zero_or_more(self):
        assert dies_per_wafer(300.0, 70000.0) >= 0

    def test_good_dies_applies_yield(self):
        gross = dies_per_wafer(300.0, 100.0)
        good = good_dies_per_wafer(300.0, 100.0, 0.1)
        assert good < gross
        assert good == pytest.approx(gross * murphy_yield(100.0, 0.1))

    def test_good_dies_poisson_option(self):
        good = good_dies_per_wafer(300.0, 100.0, 0.1, model="poisson")
        assert good == pytest.approx(
            dies_per_wafer(300.0, 100.0) * poisson_yield(100.0, 0.1)
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(SimulationError):
            good_dies_per_wafer(300.0, 100.0, 0.1, model="bose")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SimulationError):
            dies_per_wafer(0.0, 100.0)
        with pytest.raises(SimulationError):
            dies_per_wafer(300.0, 0.0)


class TestWaferBreakdown:
    def test_requires_all_components(self):
        with pytest.raises(DataValidationError):
            WaferBreakdown({"energy": Carbon.kg(1.0)})

    def test_rejects_unknown_components(self):
        components = {name: Carbon.kg(1.0) for name in WAFER_COMPONENTS}
        components["magic"] = Carbon.kg(1.0)
        with pytest.raises(DataValidationError):
            WaferBreakdown(components)

    def test_shares_sum_to_one(self):
        model = tsmc_wafer_model()
        assert sum(model.baseline.shares().values()) == pytest.approx(1.0)


class TestWaferFootprintModel:
    def test_reported_shares_roundtrip(self):
        model = tsmc_wafer_model()
        assert model.baseline.share("energy") == pytest.approx(0.63)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(DataValidationError):
            WaferFootprintModel.from_reported_shares(
                shares={"energy": 0.5},
                total=Carbon.kg(100.0),
                fab_intensity=TAIWAN_GRID.intensity,
            )

    def test_energy_improvement_touches_only_energy(self):
        model = tsmc_wafer_model()
        improved = model.with_energy_improvement(8.0)
        for name in WAFER_COMPONENTS:
            if name == "energy":
                assert improved.components[name].grams == pytest.approx(
                    model.baseline.components[name].grams / 8.0
                )
            else:
                assert improved.components[name].grams == pytest.approx(
                    model.baseline.components[name].grams
                )

    def test_total_reduction_saturates(self):
        model = tsmc_wafer_model()
        # Even infinite cleanup cannot beat 1/(1 - energy_share).
        limit = 1.0 / (1.0 - model.baseline.share("energy"))
        assert model.total_reduction(64.0) < limit
        assert model.total_reduction(1e9) == pytest.approx(limit, rel=1e-3)

    def test_reduction_of_one_is_identity(self):
        assert tsmc_wafer_model().total_reduction(1.0) == pytest.approx(1.0)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(SimulationError):
            tsmc_wafer_model().with_energy_improvement(0.0)

    def test_sweep_rows_normalized_to_baseline(self):
        rows = tsmc_wafer_model().sweep((1, 2, 4))
        assert rows[0]["total"] == pytest.approx(1.0)
        assert rows[-1]["total"] < rows[0]["total"]

    def test_from_node_area_scaling(self):
        node = node_by_name("16nm")
        model = WaferFootprintModel.from_node(node, TAIWAN_GRID.intensity)
        per_cm2 = model.carbon_per_cm2().kilograms
        expected = (
            node.energy_kwh_per_cm2 * TAIWAN_GRID.intensity.grams_per_kwh / 1000.0
            + node.gas_kg_per_cm2
            + node.material_kg_per_cm2
        )
        assert per_cm2 == pytest.approx(expected, rel=1e-6)

    def test_from_node_matches_figure14_shares(self):
        model = WaferFootprintModel.from_node(
            node_by_name("16nm"), TAIWAN_GRID.intensity
        )
        assert model.baseline.share("energy") == pytest.approx(0.63, abs=0.01)

    def test_gas_split_must_sum_to_one(self):
        with pytest.raises(DataValidationError):
            WaferFootprintModel.from_node(
                node_by_name("16nm"),
                TAIWAN_GRID.intensity,
                gas_split={"pfc_diffusive": 0.5},
            )


@given(st.floats(min_value=1.0, max_value=1024.0))
def test_reduction_monotone_in_factor(factor):
    model = tsmc_wafer_model()
    assert model.total_reduction(factor) <= model.total_reduction(factor * 2.0)


class TestAbatement:
    def test_removal_fraction(self):
        policy = AbatementPolicy(coverage=0.8, destruction_efficiency=0.9)
        assert policy.removal_fraction == pytest.approx(0.72)

    def test_apply_reduces_only_gas_components(self):
        model = tsmc_wafer_model()
        abated = AbatementPolicy(coverage=1.0).apply(model.baseline)
        assert abated.components["energy"].grams == pytest.approx(
            model.baseline.components["energy"].grams
        )
        assert (
            abated.components["pfc_diffusive"].grams
            < model.baseline.components["pfc_diffusive"].grams
        )

    def test_zero_coverage_is_identity(self):
        model = tsmc_wafer_model()
        abated = AbatementPolicy(coverage=0.0).apply(model.baseline)
        assert abated.total.grams == pytest.approx(model.baseline.total.grams)

    def test_coverage_validated(self):
        with pytest.raises(SimulationError):
            AbatementPolicy(coverage=1.5)

    def test_efficiency_bounds_validated(self):
        with pytest.raises(SimulationError):
            AbatementPolicy(coverage=0.5, destruction_efficiency=-0.1)
        with pytest.raises(SimulationError):
            AbatementPolicy(coverage=0.5, destruction_efficiency=1.2)

    def test_boundary_factors_accepted(self):
        # Both extremes of each knob are legal policies, not errors.
        assert AbatementPolicy(0.0, 0.0).removal_fraction == 0.0
        assert AbatementPolicy(1.0, 1.0).removal_fraction == 1.0

    def test_full_abatement_removes_all_abatable_gas(self):
        model = tsmc_wafer_model()
        abated = AbatementPolicy(1.0, 1.0).apply(model.baseline)
        for name in ("pfc_diffusive", "chemicals_gases", "bulk_gases"):
            assert abated.components[name].grams == 0.0
        assert abated.components["energy"].grams == pytest.approx(
            model.baseline.components["energy"].grams
        )

    def test_apply_scales_abatable_total_linearly(self):
        model = tsmc_wafer_model()
        policy = AbatementPolicy(0.8, 0.9)
        abated = policy.apply(model.baseline)
        for name in ("pfc_diffusive", "chemicals_gases", "bulk_gases"):
            assert abated.components[name].grams == pytest.approx(
                model.baseline.components[name].grams
                * (1.0 - policy.removal_fraction)
            )


class TestYieldArrayContract:
    """The vectorized yield kernels are position-stable vs scalars.

    ``repro.portfolio.batch`` relies on element ``i`` of an array call
    being *bit-identical* to a scalar call at element ``i`` — exact
    equality, not approx.
    """

    def test_poisson_position_stable(self):
        areas = np.array([60.0, 100.0, 450.0, 800.0])
        defects = np.array([0.0, 0.05, 0.10, 0.46])
        batched = poisson_yield(areas, defects)
        for index in range(areas.size):
            assert batched[index] == poisson_yield(
                float(areas[index]), float(defects[index])
            )

    def test_murphy_position_stable(self):
        areas = np.array([60.0, 100.0, 450.0, 800.0])
        defects = np.array([0.0, 0.05, 0.10, 0.46])
        batched = murphy_yield(areas, defects)
        for index in range(areas.size):
            assert batched[index] == murphy_yield(
                float(areas[index]), float(defects[index])
            )

    def test_murphy_zero_defect_singularity_in_arrays(self):
        batched = murphy_yield(np.array([100.0, 200.0]), np.array([0.0, 0.0]))
        assert batched.tolist() == [1.0, 1.0]

    def test_dies_per_wafer_array_matches_scalar_counts(self):
        areas = np.array([50.0, 100.0, 600.0])
        batched = dies_per_wafer(300.0, areas)
        assert batched.tolist() == [
            float(dies_per_wafer(300.0, float(area))) for area in areas
        ]

    def test_good_dies_array_matches_scalar(self):
        areas = np.array([100.0, 600.0])
        batched = good_dies_per_wafer(300.0, areas, 0.1)
        for index in range(areas.size):
            assert batched[index] == good_dies_per_wafer(
                300.0, float(areas[index]), 0.1
            )

    def test_array_validation_rejects_any_bad_element(self):
        with pytest.raises(SimulationError, match="die area"):
            murphy_yield(np.array([100.0, -1.0]), 0.1)
        with pytest.raises(SimulationError, match="defect density"):
            poisson_yield(100.0, np.array([0.1, -0.2]))
        with pytest.raises(SimulationError, match="wafer diameter"):
            dies_per_wafer(np.array([300.0, 0.0]), 100.0)

    def test_giant_die_hits_zero_good_dies(self):
        # The zero-yield guard upstream (portfolio) triggers off this.
        assert dies_per_wafer(300.0, 70000.0) == 0
        assert good_dies_per_wafer(300.0, 70000.0, 0.1) == 0.0
