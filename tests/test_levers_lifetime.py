"""Tests for reduction levers and lifetime/replacement analysis."""

from __future__ import annotations

import pytest

from repro.analysis.levers import (
    FootprintScenario,
    carbon_aware_scheduling_lever,
    compare_levers,
    lifetime_extension_lever,
    renewable_energy_lever,
    scale_down_lever,
)
from repro.analysis.lifetime import (
    annualized_footprint,
    lifetime_sweep,
    replacement_break_even_years,
)
from repro.errors import SimulationError
from repro.units import Carbon, CarbonIntensity, Energy


@pytest.fixture
def scenario() -> FootprintScenario:
    return FootprintScenario(
        name="cluster",
        annual_energy=Energy.gwh(100.0),
        grid=CarbonIntensity.g_per_kwh(400.0),
        embodied_total=Carbon.kilotonnes(40.0),
        lifetime_years=4.0,
    )


class TestScenario:
    def test_opex_per_year(self, scenario):
        assert scenario.opex_per_year.kilotonnes_value == pytest.approx(40.0)

    def test_embodied_per_year(self, scenario):
        assert scenario.embodied_per_year.kilotonnes_value == pytest.approx(10.0)

    def test_total(self, scenario):
        assert scenario.total_per_year.kilotonnes_value == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            FootprintScenario(
                name="x",
                annual_energy=Energy.gwh(1.0),
                grid=CarbonIntensity.g_per_kwh(1.0),
                embodied_total=Carbon.kg(1.0),
                lifetime_years=0.0,
            )


class TestLevers:
    def test_renewable_lever_full_coverage(self, scenario):
        lever = renewable_energy_lever(CarbonIntensity.g_per_kwh(10.0))
        improved = lever.apply(scenario)
        assert improved.grid.grams_per_kwh == pytest.approx(10.0)
        # Embodied untouched.
        assert improved.embodied_per_year.grams == scenario.embodied_per_year.grams

    def test_renewable_lever_partial_coverage(self, scenario):
        lever = renewable_energy_lever(
            CarbonIntensity.g_per_kwh(0.0), coverage=0.5
        )
        improved = lever.apply(scenario)
        assert improved.grid.grams_per_kwh == pytest.approx(200.0)

    def test_lifetime_lever_reduces_embodied_only(self, scenario):
        lever = lifetime_extension_lever(4.0)
        improved = lever.apply(scenario)
        assert improved.embodied_per_year.kilotonnes_value == pytest.approx(5.0)
        assert improved.opex_per_year.grams == scenario.opex_per_year.grams

    def test_scale_down_tradeoff(self, scenario):
        lever = scale_down_lever(embodied_reduction=0.5, energy_penalty=0.1)
        improved = lever.apply(scenario)
        assert improved.embodied_per_year.kilotonnes_value == pytest.approx(5.0)
        assert improved.annual_energy.gigawatt_hours == pytest.approx(110.0)

    def test_scheduling_lever_scales_grid(self, scenario):
        lever = carbon_aware_scheduling_lever(0.25)
        improved = lever.apply(scenario)
        assert improved.grid.grams_per_kwh == pytest.approx(300.0)

    def test_savings_sign(self, scenario):
        lever = renewable_energy_lever(CarbonIntensity.g_per_kwh(10.0))
        assert lever.savings(scenario).grams > 0.0

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            renewable_energy_lever(CarbonIntensity.g_per_kwh(0.0), coverage=1.5)
        with pytest.raises(SimulationError):
            lifetime_extension_lever(0.0)
        with pytest.raises(SimulationError):
            scale_down_lever(embodied_reduction=1.5)
        with pytest.raises(SimulationError):
            carbon_aware_scheduling_lever(-0.1)


class TestCompareLevers:
    def test_ranked_by_savings(self, scenario):
        table = compare_levers(
            scenario,
            [
                renewable_energy_lever(CarbonIntensity.g_per_kwh(10.0)),
                lifetime_extension_lever(1.0),
            ],
        )
        savings = table.column("saved_t_per_year")
        assert savings == sorted(savings, reverse=True)

    def test_requires_levers(self, scenario):
        with pytest.raises(SimulationError):
            compare_levers(scenario, [])

    def test_renewables_beat_lifetime_on_dirty_grid(self, scenario):
        table = compare_levers(
            scenario,
            [
                renewable_energy_lever(CarbonIntensity.g_per_kwh(10.0)),
                lifetime_extension_lever(2.0),
            ],
        )
        assert table.row(0)["lever"] == "renewable_energy"


class TestLifetimeAnalysis:
    def test_annualized_footprint_components(self):
        total = annualized_footprint(
            Carbon.kg(80.0), Energy.kwh(10.0),
            CarbonIntensity.g_per_kwh(400.0), 4.0,
        )
        assert total.kilograms == pytest.approx(20.0 + 4.0)

    def test_annualized_falls_with_lifetime(self):
        embodied = Carbon.kg(64.0)
        energy = Energy.kwh(10.0)
        grid = CarbonIntensity.g_per_kwh(380.0)
        short = annualized_footprint(embodied, energy, grid, 2.0)
        long = annualized_footprint(embodied, energy, grid, 6.0)
        assert long.grams < short.grams

    def test_sweep_shares_fall(self):
        table = lifetime_sweep(
            Carbon.kg(64.0), Energy.kwh(10.0), CarbonIntensity.g_per_kwh(380.0)
        )
        shares = table.column("embodied_share")
        assert all(a > b for a, b in zip(shares, shares[1:]))

    def test_zero_lifetime_rejected(self):
        with pytest.raises(SimulationError):
            annualized_footprint(
                Carbon.kg(1.0), Energy.kwh(1.0),
                CarbonIntensity.g_per_kwh(1.0), 0.0,
            )


class TestReplacementBreakEven:
    def test_efficient_replacement_pays_back_eventually(self):
        years = replacement_break_even_years(
            Carbon.kg(60.0),
            old_annual_energy=Energy.kwh(100.0),
            new_annual_energy=Energy.kwh(50.0),
            grid=CarbonIntensity.g_per_kwh(400.0),
        )
        # Saves 20 kg/yr against 60 kg embodied -> 3 years.
        assert years == pytest.approx(3.0)

    def test_no_efficiency_gain_never_pays_back(self):
        years = replacement_break_even_years(
            Carbon.kg(60.0),
            old_annual_energy=Energy.kwh(100.0),
            new_annual_energy=Energy.kwh(100.0),
            grid=CarbonIntensity.g_per_kwh(400.0),
        )
        assert years == float("inf")

    def test_cleaner_grid_stretches_payback(self):
        kwargs = dict(
            new_embodied=Carbon.kg(60.0),
            old_annual_energy=Energy.kwh(100.0),
            new_annual_energy=Energy.kwh(50.0),
        )
        dirty = replacement_break_even_years(
            grid=CarbonIntensity.g_per_kwh(800.0), **kwargs
        )
        clean = replacement_break_even_years(
            grid=CarbonIntensity.g_per_kwh(50.0), **kwargs
        )
        assert clean > dirty
