"""Property-based invariants across the carbon models.

These are the conservation and monotonicity laws the library's
conclusions rest on: cleaner energy never adds carbon, bigger hardware
never embodies less, longer lifetimes never raise the annualized
footprint, and accounting identities hold under arbitrary inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.growth import GrowthScenario, growth_trajectory
from repro.analysis.lifetime import annualized_footprint
from repro.core.embodied import EmbodiedModel
from repro.core.ghg import GHGInventory, Scope
from repro.core.lca import DeviceClass, LifeCycleStage, ProductLCA
from repro.fab.process import NODE_ROADMAP
from repro.fab.wafer import WaferFootprintModel
from repro.units import Carbon, CarbonIntensity, Energy

nodes = st.sampled_from(NODE_ROADMAP)
areas = st.floats(min_value=10.0, max_value=800.0)
intensities = st.floats(min_value=1.0, max_value=900.0)
positive_kg = st.floats(min_value=0.1, max_value=1e6)


@settings(max_examples=50)
@given(nodes, areas, areas)
def test_embodied_monotone_in_die_area(node, area_a, area_b):
    model = EmbodiedModel()
    small, large = sorted((area_a, area_b))
    assert (
        model.logic_carbon(small, node).grams
        <= model.logic_carbon(large, node).grams + 1e-6
    )


@settings(max_examples=50)
@given(nodes, areas, intensities, intensities)
def test_embodied_monotone_in_fab_intensity(node, area, g_a, g_b):
    clean_g, dirty_g = sorted((g_a, g_b))
    clean = EmbodiedModel(fab_intensity=CarbonIntensity.g_per_kwh(clean_g))
    dirty = EmbodiedModel(fab_intensity=CarbonIntensity.g_per_kwh(dirty_g))
    assert (
        clean.logic_carbon(area, node).grams
        <= dirty.logic_carbon(area, node).grams + 1e-6
    )


@settings(max_examples=50)
@given(nodes, intensities, st.floats(min_value=1.0, max_value=512.0))
def test_wafer_energy_improvement_never_increases_total(node, grid_g, factor):
    model = WaferFootprintModel.from_node(
        node, CarbonIntensity.g_per_kwh(grid_g)
    )
    improved = model.with_energy_improvement(factor)
    assert improved.total.grams <= model.baseline.total.grams + 1e-9


@settings(max_examples=50)
@given(
    positive_kg,
    st.floats(min_value=0.0, max_value=1e5),
    intensities,
    st.floats(min_value=0.5, max_value=20.0),
    st.floats(min_value=0.5, max_value=20.0),
)
def test_longer_lifetime_never_raises_annualized_footprint(
    embodied_kg, annual_kwh, grid_g, life_a, life_b
):
    short, long = sorted((life_a, life_b))
    grid = CarbonIntensity.g_per_kwh(grid_g)
    shorter = annualized_footprint(
        Carbon.kg(embodied_kg), Energy.kwh(annual_kwh), grid, short
    )
    longer = annualized_footprint(
        Carbon.kg(embodied_kg), Energy.kwh(annual_kwh), grid, long
    )
    assert longer.grams <= shorter.grams + 1e-6


@settings(max_examples=40)
@given(
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=10.0, max_value=2000.0),
)
def test_lca_stage_carbons_conserve_total(production_fraction, total_kg):
    remaining = 1.0 - production_fraction
    lca = ProductLCA(
        product="prop_device",
        vendor="acme",
        year=2020,
        device_class=DeviceClass.PHONE,
        total=Carbon.kg(total_kg),
        stage_fractions={
            LifeCycleStage.PRODUCTION: production_fraction,
            LifeCycleStage.TRANSPORT: remaining * 0.2,
            LifeCycleStage.USE: remaining * 0.7,
            LifeCycleStage.END_OF_LIFE: remaining * 0.1,
        },
    )
    reassembled = sum(
        lca.stage_carbon(stage).grams for stage in LifeCycleStage
    )
    assert reassembled == pytest.approx(lca.total.grams, rel=1e-9)
    assert lca.capex_fraction + lca.opex_fraction == pytest.approx(1.0)


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(Scope)),
            st.floats(min_value=0.0, max_value=1e6),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_inventory_total_is_sum_of_scope_totals(entries):
    inventory = GHGInventory("prop_org", 2020)
    for index, (scope, kg) in enumerate(entries):
        inventory.add(scope, f"category_{index}", Carbon.kg(kg))
    market_total = inventory.total(market_based=True).grams
    by_scope = sum(
        inventory.scope_total(scope).grams
        for scope in Scope
        if scope is not Scope.SCOPE2_LOCATION
    )
    assert market_total == pytest.approx(by_scope, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=3.0),
    st.floats(min_value=1.0, max_value=3.0),
    st.integers(min_value=2, max_value=8),
)
def test_growth_embodied_share_direction_follows_race(growth, gain, years):
    scenario = GrowthScenario(
        name="prop_fleet",
        initial_units=100.0,
        embodied_per_unit=Carbon.kg(1000.0),
        unit_lifetime_years=4.0,
        initial_energy_per_unit=Energy.kwh(10_000.0),
        fleet_growth_per_year=growth,
        efficiency_gain_per_year=gain,
        grid=CarbonIntensity.g_per_kwh(380.0),
    )
    table = growth_trajectory(scenario, years)
    shares = table.column("embodied_share")
    if gain > 1.0:
        # Efficiency improves while embodied-per-unit is fixed: the
        # embodied share can only rise year over year.
        assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))
    else:
        assert all(
            a == pytest.approx(b, rel=1e-9) for a, b in zip(shares, shares[1:])
        )
