"""Chaos soak for the sweep service: correctness under fault storms.

The service's resilience claims are only worth something if a batch
that weathered injected faults answers *exactly* what a clean run
would have. These tests arm :meth:`repro.exec.FaultSpec.chaos`
schedules (seeded, attempt-1-only — an armed retry always recovers)
under live multi-client sessions and pin three things:

* recovered responses are bit-identical to fault-free library calls;
* the trace a stormed run leaves behind matches the attempt-outcome
  schedule :func:`repro.exec.predict_outcomes` computes in advance;
* persistent (every-attempt) faults degrade into structured responses
  with :class:`~repro.exec.FailureReport` attached — never hangs,
  never silent drops — and a post-storm drain loses nothing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exec import (
    FaultRule,
    FaultSpec,
    ShardPlan,
    install_faults,
    predict_outcomes,
)
from repro.obs import TraceRecorder, install_recorder
from repro.obs.recorder import load_trace
from repro.obs.stats import trace_summary
from repro.serve import ServeConfig, ServiceClient, SweepService, parse_request

#: One distinct scenario per concurrent client in the storm waves.
_STORM_OVERRIDES = [
    {},
    {"facility.pue": 1.1},
    {"facility.pue": 1.2},
    {"facility.pue": 1.4},
    {"annual_growth": 0.05},
    {"annual_growth": 0.15},
    {"initial_servers": 30000},
    {"initial_servers": 60000},
    {"utilization": 0.4},
    {"utilization": 0.7},
    {"facility.pue": 1.3, "annual_growth": 0.1},
    {"server.lifetime_years": 5.0},
]

_CHUNK_SIZE = 2

#: Shard starts the chaos schedule covers: every start any coalesced
#: composition of the storm can produce at the fixed chunk size.
_STARTS = tuple(range(0, len(_STORM_OVERRIDES), _CHUNK_SIZE))


def _chaos_spec(seed: int = 7, rate: float = 0.6) -> FaultSpec:
    spec = FaultSpec.chaos(
        _STARTS, seed=seed, rate=rate, kinds=("raise", "crash", "corrupt")
    )
    assert spec.rules, "storm seed produced no faults; pick another"
    return spec


def _expected_rows():
    """The bit-exact per-scenario rows of a fault-free library call."""
    from repro.datacenter.fleet import simulate_fleet_batch
    from repro.scenarios.presets import facebook_like_fleet
    from repro.scenarios.runner import apply_overrides

    table = simulate_fleet_batch(
        [
            apply_overrides(facebook_like_fleet(), record)
            for record in _STORM_OVERRIDES
        ]
    ).final_year_table().drop("scenario")
    return [
        {name: table.column(name)[index] for name in table.column_names}
        for index in range(len(_STORM_OVERRIDES))
    ]


class TestChaosStorm:
    def test_stormed_responses_bit_identical_to_clean_calls(self):
        """A live multi-client session under chaos answers exactly."""

        async def scenario():
            service = SweepService(
                ServeConfig(
                    retries=1, chunk_size=_CHUNK_SIZE, batch_window_s=0.05
                )
            )
            await service.start()
            clients = [
                ServiceClient("127.0.0.1", service.port)
                for _ in _STORM_OVERRIDES
            ]
            try:
                with install_faults(_chaos_spec()):
                    responses = await asyncio.gather(
                        *(
                            client.scenario(record)
                            for client, record in zip(
                                clients, _STORM_OVERRIDES
                            )
                        )
                    )
            finally:
                for client in clients:
                    await client.close()
                abandoned = await service.drain()
            return responses, abandoned

        responses, abandoned = asyncio.run(scenario())
        assert abandoned == 0
        expected = _expected_rows()
        for (status, payload), want in zip(responses, expected):
            # Attempt-1 faults with one retry armed: every request
            # recovers, nothing is even flagged degraded.
            assert status == 200
            assert payload["degraded"] is False
            for name, value in want.items():
                assert payload["row"][name] == float(value), name

    def test_trace_matches_predicted_attempt_outcomes(self):
        """A stormed batch's trace is exactly the schedule's prediction."""
        spec = _chaos_spec(seed=11, rate=0.7)
        requests = [
            parse_request("scenario", {"overrides": record})
            for record in _STORM_OVERRIDES
        ]
        recorder = TraceRecorder()

        async def scenario():
            service = SweepService(
                ServeConfig(retries=1, chunk_size=_CHUNK_SIZE)
            )
            await service.start()
            try:
                with install_recorder(recorder), install_faults(spec):
                    return await service._execute_batch(
                        requests[0].group_key, requests, None
                    )
            finally:
                await service.drain()

        responses = asyncio.run(scenario())
        expected = _expected_rows()
        for response, want in zip(responses, expected):
            assert response.status == 200
            for name, value in want.items():
                assert response.payload["row"][name] == float(value), name
        # One coalesced batch over the full storm: the plan's shard
        # starts are exactly _STARTS, so the oracle's prediction names
        # every attempt event the trace may contain.
        plan = ShardPlan.plan(len(requests), _CHUNK_SIZE, 1)
        starts = [shard.start for shard in plan.shards()]
        assert tuple(starts) == _STARTS
        predicted = predict_outcomes(
            spec, starts, max_attempts=2, pooled=False, timeout_armed=False
        )
        recorded: dict[int, list[str]] = {}
        for line in recorder.events:
            if line.get("kind") == "attempt":
                recorded.setdefault(line["stream"], []).append(
                    line["outcome"]
                )
        assert recorded == predicted
        # The batch span itself was traced with the coalesced width.
        widths = [
            line.get("width")
            for line in recorder.events
            if line.get("kind") == "request_batch"
        ]
        assert widths == [len(requests)]

    def test_persistent_faults_degrade_structured_never_silent(self):
        """Every-attempt faults: structured degraded answers, breaker trips."""
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(0,), attempts=None),)
        )

        async def scenario():
            service = SweepService(
                ServeConfig(
                    retries=1,
                    chunk_size=1,
                    batch_window_s=0.05,
                    breaker_threshold=1,
                )
            )
            await service.start()
            clients = [
                ServiceClient("127.0.0.1", service.port) for _ in range(4)
            ]
            probe = ServiceClient("127.0.0.1", service.port)
            try:
                with install_faults(spec):
                    responses = await asyncio.gather(
                        *(
                            client.scenario({"facility.pue": 1.0 + i / 10})
                            for i, client in enumerate(clients)
                        )
                    )
                    health = (await probe.healthz())[1]
            finally:
                for client in clients + [probe]:
                    await client.close()
                abandoned = await service.drain()
            return responses, health, abandoned

        responses, health, abandoned = asyncio.run(scenario())
        assert abandoned == 0
        assert len(responses) == 4
        # Chunk 0 of every batch dies on every attempt. Whatever the
        # coalescing produced, each client must get a structured
        # degraded answer — a 200 with the report, or a 500 naming the
        # failure — never a hang or an empty body.
        for status, payload in responses:
            assert status in (200, 500)
            assert payload["degraded"] is True
            if status == 200:
                assert payload["failure_report"]["failures"]
            else:
                assert payload["error"] in ("chunk_failed", "execution_failed")
        assert health["breaker"]["trips"] >= 1

    def test_soak_trace_survives_drain_and_replays(self, tmp_path):
        """A stormed soak leaves a loadable trace whose replay matches."""
        trace_path = tmp_path / "soak-trace.jsonl"
        recorder = TraceRecorder(trace_path)
        waves = 3

        async def scenario():
            service = SweepService(
                ServeConfig(
                    retries=1,
                    chunk_size=_CHUNK_SIZE,
                    batch_window_s=0.02,
                    cache_dir=str(tmp_path / "cache"),
                )
            )
            await service.start()
            statuses = []
            with install_recorder(recorder), install_faults(_chaos_spec()):
                for _ in range(waves):
                    clients = [
                        ServiceClient("127.0.0.1", service.port)
                        for _ in range(6)
                    ]
                    try:
                        wave = await asyncio.gather(
                            clients[0].scenario(_STORM_OVERRIDES[1]),
                            clients[1].scenario(_STORM_OVERRIDES[2]),
                            clients[2].portfolio({"lifetime_years": 3.0}),
                            clients[3].portfolio({"lifetime_years": 4.0}),
                            clients[4].sweep("fleet_growth_lifetime"),
                            clients[5].sweep(
                                "fleet_growth_lifetime", draws=8, seed=3
                            ),
                        )
                        statuses.extend(status for status, _ in wave)
                    finally:
                        for client in clients:
                            await client.close()
                abandoned = await service.drain()
            return statuses, abandoned

        statuses, abandoned = asyncio.run(scenario())
        assert abandoned == 0
        total = waves * 6
        assert statuses == [200] * total
        # The post-drain trace loads, every stormed chunk recovered
        # (last attempt ok), and replaying it yields the same request
        # accounting the live /metrics endpoint was serving.
        lines = load_trace(trace_path)
        attempts: dict[int, list[str]] = {}
        for line in lines:
            if line.get("kind") == "attempt":
                attempts.setdefault(line["stream"], []).append(
                    line["outcome"]
                )
        assert attempts, "storm left no attempt events in the trace"
        for start, outcomes in attempts.items():
            assert outcomes[-1] == "ok", (start, outcomes)
        summary = trace_summary(lines)
        assert summary["counters"]["serve.requests"] == total
        assert summary["counters"]["serve.status.2xx"] == total
        assert summary["counters"].get("serve.batches", 0) <= total
