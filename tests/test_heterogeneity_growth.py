"""Tests for heterogeneous provisioning and the growth model."""

from __future__ import annotations

import pytest

from repro.analysis.growth import GrowthScenario, growth_trajectory
from repro.data.grids import US_GRID
from repro.datacenter.heterogeneity import (
    ServerType,
    WorkloadClass,
    compare_provisioning,
    provision_heterogeneous,
    provision_homogeneous,
)
from repro.datacenter.server import AI_TRAINING_SERVER, WEB_SERVER
from repro.errors import SimulationError
from repro.units import Carbon, CarbonIntensity, Energy


@pytest.fixture
def general() -> ServerType:
    return ServerType(
        config=WEB_SERVER,
        throughput_rps={"web": 1000.0, "ai": 100.0},
    )


@pytest.fixture
def accelerator() -> ServerType:
    return ServerType(
        config=AI_TRAINING_SERVER,
        throughput_rps={"ai": 2000.0},
    )


class TestServerType:
    def test_servers_for_rounds_up(self, general):
        workload = WorkloadClass("web", demand_rps=1501.0)
        assert general.servers_for(workload, utilization_target=1.0) == 2

    def test_utilization_headroom_adds_servers(self, general):
        workload = WorkloadClass("web", demand_rps=1000.0)
        assert general.servers_for(workload, 1.0) == 1
        assert general.servers_for(workload, 0.5) == 2

    def test_cannot_serve_unknown_workload(self, accelerator):
        with pytest.raises(SimulationError):
            accelerator.servers_for(WorkloadClass("web", 100.0), 0.6)

    def test_invalid_parameters(self, general):
        with pytest.raises(SimulationError):
            WorkloadClass("x", 0.0)
        with pytest.raises(SimulationError):
            ServerType(config=WEB_SERVER, throughput_rps={"web": 0.0})
        with pytest.raises(SimulationError):
            general.servers_for(WorkloadClass("web", 1.0), 0.0)


class TestProvisioning:
    def _workloads(self) -> list[WorkloadClass]:
        return [
            WorkloadClass("web", demand_rps=10_000.0),
            WorkloadClass("ai", demand_rps=20_000.0),
        ]

    def test_homogeneous_uses_general_everywhere(self, general):
        plan = provision_homogeneous(self._workloads(), general)
        assert all(
            server_type is general for server_type, _, _ in plan.assignments
        )

    def test_heterogeneous_picks_fewest_machines(self, general, accelerator):
        plan = provision_heterogeneous(
            self._workloads(), [general, accelerator]
        )
        picked = {
            workload.name: server_type.config.name
            for server_type, workload, _ in plan.assignments
        }
        assert picked["ai"] == "ai_training_server"
        assert picked["web"] == "web_server"

    def test_heterogeneous_never_more_servers(self, general, accelerator):
        workloads = self._workloads()
        homo = provision_homogeneous(workloads, general)
        hetero = provision_heterogeneous(workloads, [general, accelerator])
        assert hetero.total_servers <= homo.total_servers

    def test_unservable_workload_rejected(self, accelerator):
        with pytest.raises(SimulationError):
            provision_heterogeneous(
                [WorkloadClass("video", 100.0)], [accelerator]
            )

    def test_empty_inputs_rejected(self, general):
        with pytest.raises(SimulationError):
            provision_homogeneous([], general)
        with pytest.raises(SimulationError):
            provision_heterogeneous(self._workloads(), [])

    def test_plan_carbon_accounting(self, general):
        plan = provision_homogeneous(self._workloads(), general)
        grid = US_GRID.intensity
        total = plan.total_per_year(grid)
        assert total.grams == pytest.approx(
            plan.embodied_per_year().grams
            + plan.operational_per_year(grid).grams
        )

    def test_compare_table_shape(self, general, accelerator):
        workloads = self._workloads()
        table = compare_provisioning(
            provision_homogeneous(workloads, general),
            provision_heterogeneous(workloads, [general, accelerator]),
            US_GRID.intensity,
        )
        assert table.column("plan") == ["homogeneous", "heterogeneous"]


class TestGrowthModel:
    def _scenario(self, growth: float = 2.0, gain: float = 1.5) -> GrowthScenario:
        return GrowthScenario(
            name="fleet",
            initial_units=100.0,
            embodied_per_unit=Carbon.kg(1000.0),
            unit_lifetime_years=4.0,
            initial_energy_per_unit=Energy.kwh(10_000.0),
            fleet_growth_per_year=growth,
            efficiency_gain_per_year=gain,
            grid=CarbonIntensity.g_per_kwh(380.0),
        )

    def test_units_compound(self):
        table = growth_trajectory(self._scenario(growth=2.0), 4)
        assert table.column("units") == [100.0, 200.0, 400.0, 800.0]

    def test_embodied_tracks_units_linearly(self):
        table = growth_trajectory(self._scenario(), 3)
        embodied = table.column("embodied_t")
        units = table.column("units")
        assert embodied[2] / embodied[0] == pytest.approx(units[2] / units[0])

    def test_operational_growth_damped_by_efficiency(self):
        table = growth_trajectory(self._scenario(growth=2.0, gain=1.5), 3)
        operational = table.column("operational_t")
        # Grows by 2/1.5 per year, not 2.
        assert operational[1] / operational[0] == pytest.approx(2.0 / 1.5)

    def test_efficiency_outpacing_growth_shrinks_operational(self):
        table = growth_trajectory(self._scenario(growth=1.2, gain=1.5), 4)
        operational = table.column("operational_t")
        assert all(a > b for a, b in zip(operational, operational[1:]))

    def test_embodied_share_rises_when_growth_wins(self):
        table = growth_trajectory(self._scenario(growth=2.0, gain=1.5), 5)
        shares = table.column("embodied_share")
        assert all(a < b for a, b in zip(shares, shares[1:]))

    def test_validation(self):
        with pytest.raises(SimulationError):
            growth_trajectory(self._scenario(), 0)
        with pytest.raises(SimulationError):
            GrowthScenario(
                name="x",
                initial_units=0.0,
                embodied_per_unit=Carbon.kg(1.0),
                unit_lifetime_years=4.0,
                initial_energy_per_unit=Energy.kwh(1.0),
                fleet_growth_per_year=2.0,
                efficiency_gain_per_year=1.5,
                grid=CarbonIntensity.g_per_kwh(380.0),
            )
        with pytest.raises(SimulationError):
            GrowthScenario(
                name="x",
                initial_units=1.0,
                embodied_per_unit=Carbon.kg(1.0),
                unit_lifetime_years=4.0,
                initial_energy_per_unit=Energy.kwh(1.0),
                fleet_growth_per_year=0.9,
                efficiency_gain_per_year=1.5,
                grid=CarbonIntensity.g_per_kwh(380.0),
            )
