"""Tests for break-even and amortization analysis."""

from __future__ import annotations

import pytest

from repro.core.amortization import (
    AmortizationSchedule,
    break_even_days,
    break_even_seconds,
    break_even_units,
    break_even_years,
)
from repro.errors import SimulationError
from repro.units import Carbon, CarbonIntensity, Power, days


@pytest.fixture
def schedule() -> AmortizationSchedule:
    return AmortizationSchedule(
        capex=Carbon.kg(22.4),
        power=Power.watts(7.0222),
        grid=CarbonIntensity.g_per_kwh(380.0),
    )


class TestBreakEvenUnits:
    def test_simple_ratio(self):
        assert break_even_units(Carbon.kg(10.0), Carbon.from_grams(1.0)) == 10_000.0

    def test_zero_per_unit_rejected(self):
        with pytest.raises(SimulationError):
            break_even_units(Carbon.kg(1.0), Carbon.zero())

    def test_negative_capex_rejected(self):
        with pytest.raises(SimulationError):
            break_even_units(Carbon.kg(-1.0), Carbon.from_grams(1.0))

    def test_zero_capex_breaks_even_immediately(self):
        assert break_even_units(Carbon.zero(), Carbon.from_grams(1.0)) == 0.0


class TestBreakEvenTime:
    def test_seconds_inverse_in_power(self):
        capex = Carbon.kg(10.0)
        grid = CarbonIntensity.g_per_kwh(380.0)
        slow = break_even_seconds(capex, Power.watts(1.0), grid)
        fast = break_even_seconds(capex, Power.watts(4.0), grid)
        assert slow == pytest.approx(4.0 * fast)

    def test_seconds_inverse_in_intensity(self):
        capex = Carbon.kg(10.0)
        power = Power.watts(5.0)
        dirty = break_even_seconds(capex, power, CarbonIntensity.g_per_kwh(800.0))
        clean = break_even_seconds(capex, power, CarbonIntensity.g_per_kwh(100.0))
        assert clean == pytest.approx(8.0 * dirty)

    def test_days_and_years_consistent(self):
        capex = Carbon.kg(10.0)
        power = Power.watts(5.0)
        grid = CarbonIntensity.g_per_kwh(380.0)
        assert break_even_days(capex, power, grid) == pytest.approx(
            break_even_seconds(capex, power, grid) / 86400.0
        )
        assert break_even_years(capex, power, grid) == pytest.approx(
            break_even_days(capex, power, grid) / 365.0
        )

    def test_paper_anchor_mobilenet_v3_cpu(self):
        # The Figure 10 bottom-panel anchor: 22.4 kg at 7.02 W on the
        # US grid breaks even in ~350 days.
        result = break_even_days(
            Carbon.kg(22.4), Power.watts(7.0222), CarbonIntensity.g_per_kwh(380.0)
        )
        assert result == pytest.approx(350.0, rel=0.01)

    def test_zero_power_rejected(self):
        with pytest.raises(SimulationError):
            break_even_seconds(
                Carbon.kg(1.0), Power.watts(0.0), CarbonIntensity.g_per_kwh(380.0)
            )

    def test_zero_intensity_rejected(self):
        with pytest.raises(SimulationError):
            break_even_seconds(
                Carbon.kg(1.0), Power.watts(1.0), CarbonIntensity.g_per_kwh(0.0)
            )


class TestAmortizationSchedule:
    def test_opex_at_break_even_equals_capex(self, schedule):
        seconds = schedule.break_even_seconds()
        assert schedule.opex_after(seconds).kilograms == pytest.approx(
            schedule.capex.kilograms
        )

    def test_opex_share_is_half_at_break_even(self, schedule):
        seconds = schedule.break_even_seconds()
        assert schedule.opex_share_after(seconds) == pytest.approx(0.5)

    def test_opex_grows_linearly(self, schedule):
        one_day = schedule.opex_after(days(1)).grams
        ten_days = schedule.opex_after(days(10)).grams
        assert ten_days == pytest.approx(10.0 * one_day)

    def test_total_after_includes_capex(self, schedule):
        assert schedule.total_after(0.0).kilograms == pytest.approx(
            schedule.capex.kilograms
        )

    def test_amortized_within_lifetime(self, schedule):
        break_even = schedule.break_even_seconds()
        assert schedule.amortized_within(break_even * 1.01)
        assert not schedule.amortized_within(break_even * 0.99)

    def test_negative_elapsed_rejected(self, schedule):
        with pytest.raises(SimulationError):
            schedule.opex_after(-1.0)

    def test_nonpositive_lifetime_rejected(self, schedule):
        with pytest.raises(SimulationError):
            schedule.amortized_within(0.0)

    def test_zero_power_rejected(self):
        with pytest.raises(SimulationError):
            AmortizationSchedule(
                capex=Carbon.kg(1.0),
                power=Power.watts(0.0),
                grid=CarbonIntensity.g_per_kwh(380.0),
            )
