"""Tests for the multi-year fleet simulation."""

from __future__ import annotations

import pytest

from repro.data.grids import US_GRID
from repro.datacenter.facility import Facility
from repro.datacenter.fleet import FleetParameters, simulate_fleet
from repro.datacenter.renewable import PPAContract, RenewablePortfolio
from repro.datacenter.server import WEB_SERVER
from repro.data.energy_sources import source_by_name
from repro.errors import SimulationError
from repro.units import Carbon, Energy


def _facility() -> Facility:
    return Facility("dc", pue=1.1, construction_carbon=Carbon.kilotonnes(100.0))


def _params(**overrides) -> FleetParameters:
    params = dict(
        server=WEB_SERVER,
        facility=_facility(),
        location_intensity=US_GRID.intensity,
        initial_servers=10_000,
        annual_growth=0.20,
        years=6,
    )
    params.update(overrides)
    return FleetParameters(**params)


class TestFleetGrowth:
    def test_one_report_per_year(self):
        reports = simulate_fleet(_params())
        assert len(reports) == 6
        assert [r.year for r in reports] == list(range(2014, 2020))

    def test_fleet_grows_at_configured_rate(self):
        reports = simulate_fleet(_params())
        for earlier, later in zip(reports, reports[1:]):
            assert later.servers == int(round(earlier.servers * 1.2))

    def test_energy_tracks_fleet_size(self):
        reports = simulate_fleet(_params())
        per_server = reports[0].energy.kilowatt_hours / reports[0].servers
        for report in reports:
            assert report.energy.kilowatt_hours / report.servers == pytest.approx(
                per_server
            )

    def test_refresh_repurchases_old_cohorts(self):
        # With a 4-year server lifetime, year index 4 must repurchase
        # the initial cohort on top of growth.
        reports = simulate_fleet(_params())
        year4 = reports[4]
        growth_only = year4.servers - reports[3].servers
        assert year4.servers_added > growth_only

    def test_zero_growth_still_refreshes(self):
        reports = simulate_fleet(_params(annual_growth=0.0))
        assert reports[4].servers_added == reports[0].servers_added

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            _params(initial_servers=0)
        with pytest.raises(SimulationError):
            _params(annual_growth=-0.1)
        with pytest.raises(SimulationError):
            _params(utilization=1.5)
        with pytest.raises(SimulationError):
            _params(years=0)


class TestFleetAccounting:
    def test_without_renewables_market_equals_location(self):
        reports = simulate_fleet(_params())
        for report in reports:
            assert report.opex_market.grams == pytest.approx(
                report.opex_location.grams
            )
            assert report.renewable_coverage == 0.0

    def test_renewables_cut_market_opex_only(self):
        wind = PPAContract("wind", source_by_name("wind"), Energy.gwh(500.0))
        ramp = {3: RenewablePortfolio((wind,))}
        with_ppa = simulate_fleet(_params(renewable_ramp=ramp))
        without = simulate_fleet(_params())
        assert with_ppa[4].opex_market.grams < without[4].opex_market.grams
        assert with_ppa[4].opex_location.grams == pytest.approx(
            without[4].opex_location.grams
        )

    def test_portfolio_persists_after_ramp_year(self):
        wind = PPAContract("wind", source_by_name("wind"), Energy.gwh(500.0))
        ramp = {2: RenewablePortfolio((wind,))}
        reports = simulate_fleet(_params(renewable_ramp=ramp))
        assert reports[5].renewable_coverage > 0.0

    def test_capex_includes_construction_every_year(self):
        reports = simulate_fleet(_params())
        construction = _facility().construction_per_year().grams
        per_server = WEB_SERVER.embodied_carbon().grams
        for report in reports:
            expected = per_server * report.servers_added + construction
            assert report.capex.grams == pytest.approx(expected)

    def test_capex_fraction_bounds(self):
        reports = simulate_fleet(_params())
        for report in reports:
            assert 0.0 < report.capex_fraction_market < 1.0

    def test_capex_to_opex_infinite_when_opex_zero(self):
        from repro.datacenter.fleet import FleetYearReport

        report = FleetYearReport(
            year=2020,
            servers=1,
            servers_added=1,
            energy=Energy.kwh(1.0),
            opex_location=Carbon.kg(1.0),
            opex_market=Carbon.zero(),
            capex=Carbon.kg(5.0),
            renewable_coverage=1.0,
        )
        assert report.capex_to_opex_market == float("inf")


class TestFleetEdgeCases:
    """Regimes the batch kernel must match the scalar loop on exactly."""

    def test_sub_year_lifetime_clamps_to_annual_refresh(self):
        import dataclasses

        mayfly = dataclasses.replace(WEB_SERVER, lifetime_years=0.3)
        reports = simulate_fleet(_params(server=mayfly, annual_growth=0.0))
        # Lifetime clamps to one year: every year after the first
        # repurchases the whole (constant-size) fleet.
        for report in reports[1:]:
            assert report.servers_added == reports[0].servers

    def test_zero_growth_purchases_are_refresh_only(self):
        reports = simulate_fleet(_params(annual_growth=0.0, years=9))
        added = [report.servers_added for report in reports]
        # 4-year lifetime: purchases land exactly on years 0, 4, 8.
        assert [index for index, count in enumerate(added) if count > 0] == [
            0,
            4,
            8,
        ]
        assert added[4] == added[0] and added[8] == added[4]
        assert all(report.servers == reports[0].servers for report in reports)

    def test_ramp_holds_last_portfolio_across_gap_years(self):
        # The fleet draws ~25-60 GWh/year, so both books stay fractional.
        wind = PPAContract("wind", source_by_name("wind"), Energy.gwh(20.0))
        big = PPAContract("wind2", source_by_name("wind"), Energy.gwh(45.0))
        ramp = {1: RenewablePortfolio((wind,)), 4: RenewablePortfolio((big,))}
        reports = simulate_fleet(_params(renewable_ramp=ramp))
        assert reports[0].renewable_coverage == 0.0
        # Years 2 and 3 keep the year-1 book (coverage shrinks only
        # because the fleet grows), year 4 jumps to the bigger book.
        assert reports[2].renewable_coverage > 0.0
        assert reports[3].renewable_coverage < reports[2].renewable_coverage
        assert reports[4].renewable_coverage > reports[3].renewable_coverage

    def test_zero_market_opex_ratio_from_simulation(self):
        from repro.datacenter.fleet import simulate_fleet_batch

        zero_grid = US_GRID.intensity * 0.0
        params = _params(location_intensity=zero_grid)
        scalar = simulate_fleet(params)
        assert all(
            report.capex_to_opex_market == float("inf") for report in scalar
        )
        batch = simulate_fleet_batch([params])
        for index, report in enumerate(scalar):
            assert batch.reports(0)[index] == report
