"""Tests (including property-based) for the Pareto-frontier tools."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.pareto import ParetoPoint, dominates, frontier_shift, pareto_frontier
from repro.errors import SimulationError


def _point(label: str, perf: float, cost: float) -> ParetoPoint:
    return ParetoPoint(label=label, performance=perf, cost=cost)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates(_point("a", 10, 5), _point("b", 5, 10))

    def test_equal_points_do_not_dominate(self):
        a = _point("a", 10, 5)
        b = _point("b", 10, 5)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_points_do_not_dominate(self):
        fast_dirty = _point("a", 10, 10)
        slow_clean = _point("b", 5, 5)
        assert not dominates(fast_dirty, slow_clean)
        assert not dominates(slow_clean, fast_dirty)

    def test_dominance_with_one_axis_tied(self):
        assert dominates(_point("a", 10, 5), _point("b", 10, 6))
        assert dominates(_point("a", 11, 5), _point("b", 10, 5))

    def test_negative_coordinates_rejected(self):
        with pytest.raises(SimulationError):
            _point("a", -1.0, 5.0)


class TestFrontier:
    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_single_point(self):
        point = _point("only", 1, 1)
        assert pareto_frontier([point]) == [point]

    def test_dominated_points_removed(self):
        frontier = pareto_frontier(
            [_point("good", 10, 5), _point("bad", 5, 10), _point("ok", 12, 8)]
        )
        labels = {p.label for p in frontier}
        assert labels == {"good", "ok"}

    def test_sorted_by_cost(self):
        frontier = pareto_frontier(
            [_point("a", 10, 8), _point("b", 5, 3), _point("c", 15, 12)]
        )
        costs = [p.cost for p in frontier]
        assert costs == sorted(costs)

    def test_duplicate_coordinates_deduped(self):
        frontier = pareto_frontier([_point("a", 5, 5), _point("b", 5, 5)])
        assert len(frontier) == 1


points_strategy = st.lists(
    st.builds(
        ParetoPoint,
        label=st.text(alphabet="xyz", min_size=1, max_size=3),
        performance=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        cost=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


@given(points_strategy)
def test_frontier_members_are_non_dominated(points):
    frontier = pareto_frontier(points)
    for member in frontier:
        assert not any(dominates(other, member) for other in points)


@given(points_strategy)
def test_every_point_dominated_by_or_on_frontier(points):
    frontier = pareto_frontier(points)
    for point in points:
        covered = any(
            dominates(member, point)
            or (member.performance == point.performance and member.cost == point.cost)
            for member in frontier
        )
        assert covered


@given(points_strategy)
def test_frontier_performance_increases_with_cost(points):
    frontier = pareto_frontier(points)
    for earlier, later in zip(frontier, frontier[1:]):
        assert earlier.cost <= later.cost
        assert earlier.performance <= later.performance


@given(points_strategy, points_strategy)
def test_adding_points_never_worsens_frontier_extremes(base, extra):
    before = pareto_frontier(base)
    after = pareto_frontier(base + extra)
    assert max(p.performance for p in after) >= max(p.performance for p in before)
    assert min(p.cost for p in after) <= min(p.cost for p in before)


class TestFrontierShift:
    def test_paper_shape_right_not_down(self):
        earlier = [_point("x2017", 35, 63), _point("cheap", 7, 19)]
        later = earlier + [_point("x2019", 75, 66)]
        shift = frontier_shift(
            pareto_frontier(earlier), pareto_frontier(later)
        )
        assert shift["performance_gain"] == pytest.approx(75 / 35)
        assert shift["cost_reduction"] == pytest.approx(1.0)

    def test_empty_frontier_rejected(self):
        with pytest.raises(SimulationError):
            frontier_shift([], [_point("a", 1, 1)])
