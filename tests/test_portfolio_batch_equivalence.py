"""The portfolio batch kernels are pinned to the scalar reference.

:func:`repro.portfolio.simulate_device` (composed from the scalar
``repro.fab`` / ``repro.mobile`` primitives) is the reference
implementation. Every batch path — ``simulate_device_batch``,
``sweep_portfolio``, ``sweep_portfolio_uncertain``, and their sharded
variants over a jobs × chunk-size grid — must reproduce it *exactly*:
float equality on every element, identical row order, identical
quantile tables. The expected fleet aggregates are rebuilt here from
per-device scalar runs with the same exactly-rounded arithmetic the
sweep layer uses, so any drift in either side breaks the pin.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.analysis.uncertainty import LogNormal, Triangular, is_distribution
from repro.errors import SimulationError
from repro.exec import FaultRule, FaultSpec, ShardPlan, install_faults
from repro.portfolio import (
    DEVICE_METRICS,
    DeviceSpec,
    default_catalog,
    simulate_device,
    simulate_device_batch,
    sweep_portfolio,
    sweep_portfolio_uncertain,
)
from repro.portfolio.sweep import PORTFOLIO_METRICS
from repro.scenarios import ScenarioGrid
from repro.tabular import Table
from repro.uncertainty.draws import build_draw_matrix

_CATALOG = default_catalog()

_GRID = ScenarioGrid(
    **{
        "node_shift": [0.0, 1.0, 2.0],
        "fab_intensity_g_per_kwh": [583.0, 250.0],
    }
)

_UNCERTAIN_GRID = ScenarioGrid(
    **{
        "node_shift": [0.0, 2.0],
        "defect_density_scale": [LogNormal.from_median(1.0, 0.25)],
        "lifetime_scale": [Triangular(0.8, 1.0, 1.4)],
    }
)


# ----------------------------------------------------------------------
# Scalar-reference reconstruction of the fleet aggregates
# ----------------------------------------------------------------------
def _scalar_cell(overrides: dict) -> "dict[str, float]":
    """One scenario cell's fleet aggregates from per-device scalar runs."""
    sims = []
    units = []
    for spec in _CATALOG:
        resolved = dataclasses.replace(spec, **overrides)
        sims.append(simulate_device(resolved))
        units.append(resolved.units)
    embodied_sum = math.fsum(
        sim["embodied_kg"] * unit for sim, unit in zip(sims, units)
    )
    use_sum = math.fsum(
        sim["use_kg"] * unit for sim, unit in zip(sims, units)
    )
    annual_sum = math.fsum(
        sim["annual_kg"] * unit for sim, unit in zip(sims, units)
    )
    embodied_t = embodied_sum / 1e3
    use_t = use_sum / 1e3
    return {
        "devices": len(_CATALOG),
        "units": math.fsum(units),
        "embodied_t": embodied_t,
        "use_t": use_t,
        "total_t": embodied_t + use_t,
        "annual_t": annual_sum / 1e3,
        "embodied_fraction": embodied_sum / (embodied_sum + use_sum),
        "break_even_days_mean": math.fsum(
            sim["break_even_days"] for sim in sims
        )
        / len(_CATALOG),
    }


def _scalar_sweep_rows(grid) -> "list[dict[str, float]]":
    return [_scalar_cell(dict(record)) for record in grid]


def _scalar_uncertain_samples(grid, draws: int, seed: int):
    """Per-metric (scenarios, draws) arrays from the scalar reference."""
    records = list(grid)
    matrix = build_draw_matrix(records, draws, seed)
    samples = {
        metric: np.empty((len(records), draws)) for metric in PORTFOLIO_METRICS
    }
    for s, record in enumerate(records):
        base = {
            name: value
            for name, value in record.items()
            if not is_distribution(value)
        }
        for d in range(draws):
            cell = _scalar_cell({**base, **matrix.overrides(s, d)})
            for metric in PORTFOLIO_METRICS:
                samples[metric][s, d] = cell[metric]
    return samples


def _assert_tables_identical(left: Table, right: Table) -> None:
    assert left.column_names == right.column_names
    assert left.num_rows == right.num_rows
    for name in left.column_names:
        assert left.column(name) == right.column(name), name


def _assert_uncertain_identical(left, right) -> None:
    _assert_tables_identical(left.axes, right.axes)
    assert left.draws == right.draws
    assert set(left.samples) == set(right.samples)
    for metric, values in left.samples.items():
        assert np.array_equal(values, right.samples[metric]), metric
    _assert_tables_identical(left.quantile_table(), right.quantile_table())


# ----------------------------------------------------------------------
# Per-device batch kernel vs scalar reference
# ----------------------------------------------------------------------
class TestSimulateDeviceBatch:
    def test_every_catalog_row_every_metric_exact(self):
        table = simulate_device_batch(_CATALOG)
        assert table.num_rows == len(_CATALOG)
        for index, spec in enumerate(_CATALOG):
            reference = simulate_device(spec)
            for metric in DEVICE_METRICS:
                assert table.column(metric)[index] == reference[metric], (
                    spec.name,
                    metric,
                )

    def test_identity_columns(self):
        table = simulate_device_batch(_CATALOG)
        assert table.column("device") == [spec.name for spec in _CATALOG]
        assert table.column("manufacturer") == [
            spec.manufacturer for spec in _CATALOG
        ]
        assert table.column("units") == [spec.units for spec in _CATALOG]

    def test_node_shift_resolves_like_scalar(self):
        shifted = tuple(
            dataclasses.replace(spec, node_shift=3.0) for spec in _CATALOG
        )
        table = simulate_device_batch(shifted)
        for index, spec in enumerate(shifted):
            reference = simulate_device(spec)
            for metric in DEVICE_METRICS:
                assert table.column(metric)[index] == reference[metric]

    def test_zero_yield_names_the_device(self):
        doomed = dataclasses.replace(
            _CATALOG[0],
            name="monster_die",
            die_area_mm2=70000.0,
            defect_density_scale=50.0,
        )
        with pytest.raises(SimulationError, match="monster_die"):
            simulate_device(doomed)
        with pytest.raises(SimulationError, match="monster_die"):
            simulate_device_batch((doomed,))


# ----------------------------------------------------------------------
# Deterministic fleet sweep vs scalar reference
# ----------------------------------------------------------------------
class TestSweepPortfolioEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        return sweep_portfolio(_CATALOG, _GRID)

    def test_matches_scalar_reference_exactly(self, reference):
        expected = _scalar_sweep_rows(_GRID)
        assert reference.num_rows == len(expected)
        for name in (
            "devices",
            "units",
            *PORTFOLIO_METRICS,
        ):
            assert reference.column(name) == [row[name] for row in expected], (
                name
            )

    def test_axis_columns_preserve_grid_order(self, reference):
        records = list(_GRID)
        assert reference.column("node_shift") == [
            record["node_shift"] for record in records
        ]
        assert reference.column("fab_intensity_g_per_kwh") == [
            record["fab_intensity_g_per_kwh"] for record in records
        ]

    def test_node_name_axis_matches_scalar(self):
        grid = ScenarioGrid(**{"node": ["28nm", "7nm", "3nm"]})
        table = sweep_portfolio(_CATALOG, grid)
        expected = _scalar_sweep_rows(grid)
        for name in ("devices", "units", *PORTFOLIO_METRICS):
            assert table.column(name) == [row[name] for row in expected]

    @pytest.mark.parametrize(
        "jobs,chunk_size",
        [(1, 1), (1, 3), (1, 5), (1, 8), (2, 2), (2, 5), (3, 3), (4, 1)],
    )
    def test_sharded_grid_bit_identical(self, reference, jobs, chunk_size):
        sharded = sweep_portfolio(
            _CATALOG, _GRID, jobs=jobs, chunk_size=chunk_size
        )
        _assert_tables_identical(sharded, reference)

    def test_recovers_bit_identical_under_faults(self, reference):
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(0, 4), attempts=(1,)),)
        )
        with install_faults(spec):
            stormy = sweep_portfolio(_CATALOG, _GRID, chunk_size=2, retries=1)
        _assert_tables_identical(stormy, reference)

    def test_chaos_pool_bit_identical(self, reference):
        starts = [
            shard.start
            for shard in ShardPlan(
                num_scenarios=len(_CATALOG), chunk_size=3
            ).shards()
        ]
        spec = FaultSpec.chaos(starts, seed=5, rate=1.0)
        assert spec
        with install_faults(spec):
            stormy = sweep_portfolio(
                _CATALOG, _GRID, jobs=2, chunk_size=3, retries=2
            )
        _assert_tables_identical(stormy, reference)

    def test_checkpoint_resume_bit_identical(self, reference, tmp_path):
        from repro.exec import CheckpointStore

        first = CheckpointStore(
            tmp_path, spec_parts=("portfolio-test",), consume=False
        )
        interrupted = sweep_portfolio(
            _CATALOG, _GRID, chunk_size=3, checkpoint=first
        )
        _assert_tables_identical(interrupted, reference)
        resume = CheckpointStore(
            tmp_path, spec_parts=("portfolio-test",), consume=True
        )
        resumed = sweep_portfolio(
            _CATALOG, _GRID, chunk_size=3, checkpoint=resume
        )
        _assert_tables_identical(resumed, reference)

    def test_skip_mode_returns_report(self, reference):
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(0,), attempts=None),)
        )
        with install_faults(spec):
            partial, report = sweep_portfolio(
                _CATALOG, _GRID, chunk_size=4, retries=0, on_error="skip"
            )
        assert report.num_failed == 1
        # Devices 4..7 survive: their aggregates are a 4-device fleet.
        assert partial.column("devices") == [4] * reference.num_rows
        expected = [
            {
                name: cell[name]
                for name in ("units", *PORTFOLIO_METRICS)
            }
            for cell in (
                _scalar_cell_subset(dict(record), slice(4, 8))
                for record in _GRID
            )
        ]
        for name in ("units", *PORTFOLIO_METRICS):
            assert partial.column(name) == [row[name] for row in expected]


def _scalar_cell_subset(overrides: dict, which: slice) -> "dict[str, float]":
    """Fleet aggregates of a catalog slice, same arithmetic as the sweep."""
    subset = _CATALOG[which]
    sims = [
        simulate_device(dataclasses.replace(spec, **overrides))
        for spec in subset
    ]
    units = [
        dataclasses.replace(spec, **overrides).units for spec in subset
    ]
    embodied_sum = math.fsum(
        sim["embodied_kg"] * unit for sim, unit in zip(sims, units)
    )
    use_sum = math.fsum(sim["use_kg"] * unit for sim, unit in zip(sims, units))
    annual_sum = math.fsum(
        sim["annual_kg"] * unit for sim, unit in zip(sims, units)
    )
    embodied_t = embodied_sum / 1e3
    use_t = use_sum / 1e3
    return {
        "units": math.fsum(units),
        "embodied_t": embodied_t,
        "use_t": use_t,
        "total_t": embodied_t + use_t,
        "annual_t": annual_sum / 1e3,
        "embodied_fraction": embodied_sum / (embodied_sum + use_sum),
        "break_even_days_mean": math.fsum(
            sim["break_even_days"] for sim in sims
        )
        / len(subset),
    }


# ----------------------------------------------------------------------
# Uncertain fleet sweep vs scalar reference
# ----------------------------------------------------------------------
class TestSweepPortfolioUncertainEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        return sweep_portfolio_uncertain(
            _CATALOG, _UNCERTAIN_GRID, draws=8, seed=11
        )

    def test_samples_match_scalar_reference_exactly(self, reference):
        expected = _scalar_uncertain_samples(_UNCERTAIN_GRID, draws=8, seed=11)
        assert set(reference.samples) == set(expected)
        for metric, values in expected.items():
            assert np.array_equal(reference.samples[metric], values), metric

    def test_axes_keep_tagged_labels(self, reference):
        assert reference.axes.num_rows == 2
        assert "defect_density_scale" in reference.axes.column_names
        assert "lifetime_scale" in reference.axes.column_names

    @pytest.mark.parametrize(
        "jobs,chunk_size", [(1, 1), (1, 3), (1, 6), (2, 2), (2, 5), (3, 3)]
    )
    def test_sharded_grid_bit_identical(self, reference, jobs, chunk_size):
        sharded = sweep_portfolio_uncertain(
            _CATALOG,
            _UNCERTAIN_GRID,
            draws=8,
            seed=11,
            jobs=jobs,
            chunk_size=chunk_size,
        )
        _assert_uncertain_identical(sharded, reference)

    def test_recovers_bit_identical_under_faults(self, reference):
        spec = FaultSpec(
            rules=(FaultRule(kind="raise", starts=(0, 6), attempts=(1,)),)
        )
        with install_faults(spec):
            stormy = sweep_portfolio_uncertain(
                _CATALOG,
                _UNCERTAIN_GRID,
                draws=8,
                seed=11,
                chunk_size=3,
                retries=1,
            )
        _assert_uncertain_identical(stormy, reference)


# ----------------------------------------------------------------------
# Error surfaces
# ----------------------------------------------------------------------
class TestPortfolioErrors:
    def test_empty_catalog_rejected(self):
        with pytest.raises(SimulationError, match="at least one device"):
            sweep_portfolio((), _GRID)

    def test_unknown_axis_rejected(self):
        grid = ScenarioGrid(**{"warp_factor": [1.0, 2.0]})
        with pytest.raises(SimulationError, match="warp_factor"):
            sweep_portfolio(_CATALOG, grid)

    def test_identity_fields_not_sweepable(self):
        grid = ScenarioGrid(**{"yield_model": ["murphy", "poisson"]})
        with pytest.raises(SimulationError, match="yield_model"):
            sweep_portfolio(_CATALOG, grid)

    def test_distribution_tagged_node_rejected(self):
        grid = ScenarioGrid(**{"node": [LogNormal.from_median(1.0, 0.1)]})
        with pytest.raises(SimulationError, match="node"):
            sweep_portfolio_uncertain(_CATALOG, grid, draws=4, seed=0)

    def test_non_finite_scenario_value_names_the_cell(self):
        grid = ScenarioGrid(**{"fab_intensity_g_per_kwh": [583.0, math.inf]})
        with pytest.raises(SimulationError, match="fab_intensity_g_per_kwh"):
            sweep_portfolio(_CATALOG, grid)

    def test_non_numeric_scenario_value_rejected(self):
        with pytest.raises(SimulationError, match="lifetime_scale"):
            sweep_portfolio(
                _CATALOG, [{"lifetime_scale": "forever"}]
            )

    def test_nonpositive_draws_rejected(self):
        with pytest.raises(SimulationError, match="draw"):
            sweep_portfolio_uncertain(
                _CATALOG, _UNCERTAIN_GRID, draws=0, seed=0
            )
