"""simulate_fleet_batch is pinned element-identical to simulate_fleet.

The scalar loop is the reference implementation; every field of every
simulated year must match *exactly* (float equality, not approx)
across a property-style grid of parameters, including the edge cases
the cohort ring and portfolio schedule make delicate.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.data.energy_sources import source_by_name
from repro.data.grids import US_GRID, WORLD_GRID
from repro.datacenter.facility import Facility
from repro.datacenter.fleet import (
    FleetParameters,
    simulate_fleet,
    simulate_fleet_batch,
)
from repro.datacenter.renewable import PPAContract, RenewablePortfolio
from repro.datacenter.server import STORAGE_SERVER, WEB_SERVER
from repro.errors import SimulationError
from repro.units import Carbon, Energy


def _portfolio(wind_gwh: float) -> RenewablePortfolio:
    wind = PPAContract("wind", source_by_name("wind"), Energy.gwh(wind_gwh))
    return RenewablePortfolio((wind,))


def _facility(pue: float = 1.1) -> Facility:
    return Facility("dc", pue=pue, construction_carbon=Carbon.kilotonnes(100.0))


def _params(**overrides) -> FleetParameters:
    params = dict(
        server=WEB_SERVER,
        facility=_facility(),
        location_intensity=US_GRID.intensity,
        initial_servers=10_000,
        annual_growth=0.20,
        years=6,
    )
    params.update(overrides)
    return FleetParameters(**params)


def _property_grid() -> list[FleetParameters]:
    """A cartesian parameter grid covering the delicate regimes."""
    scenarios: list[FleetParameters] = []
    ramps = [
        {},
        {0: _portfolio(50.0)},
        {2: _portfolio(500.0)},  # held across gap years 3..
        {1: _portfolio(40.0), 4: _portfolio(5000.0)},  # over-coverage late
    ]
    for growth, server, years, ramp in itertools.product(
        [0.0, 0.07, 0.25, 1.0],
        [WEB_SERVER, STORAGE_SERVER],
        [1, 3, 8],
        ramps,
    ):
        scenarios.append(
            _params(
                annual_growth=growth,
                server=server,
                years=years,
                renewable_ramp=ramp,
            )
        )
    # Edge regimes the satellite tests call out explicitly.
    scenarios.append(
        _params(server=_short_lived_server(0.3))
    )  # lifetime clamps to 1
    scenarios.append(_params(utilization=0.0))
    scenarios.append(_params(utilization=1.0))
    scenarios.append(_params(initial_servers=1, annual_growth=0.03))
    scenarios.append(
        _params(
            facility=_facility(pue=1.6),
            location_intensity=WORLD_GRID.intensity,
        )
    )
    return scenarios


def _short_lived_server(lifetime_years: float):
    import dataclasses

    return dataclasses.replace(WEB_SERVER, lifetime_years=lifetime_years)


def _assert_reports_identical(scalar, batch) -> None:
    assert len(scalar) == len(batch)
    for reference, candidate in zip(scalar, batch):
        assert candidate.year == reference.year
        assert candidate.servers == reference.servers
        assert candidate.servers_added == reference.servers_added
        assert candidate.energy.joules == reference.energy.joules
        assert candidate.opex_location.grams == reference.opex_location.grams
        assert candidate.opex_market.grams == reference.opex_market.grams
        assert candidate.capex.grams == reference.capex.grams
        assert candidate.renewable_coverage == reference.renewable_coverage


class TestBatchEquivalence:
    def test_property_grid_element_identical(self):
        scenarios = _property_grid()
        batch = simulate_fleet_batch(scenarios)
        assert batch.num_scenarios == len(scenarios)
        for index, params in enumerate(scenarios):
            _assert_reports_identical(
                simulate_fleet(params), batch.reports(index)
            )

    def test_single_scenario_matches(self):
        params = _params(renewable_ramp={1: _portfolio(300.0)})
        _assert_reports_identical(
            simulate_fleet(params), simulate_fleet_batch([params]).reports(0)
        )

    def test_mixed_horizons_mask_cleanly(self):
        scenarios = [_params(years=2), _params(years=7), _params(years=4)]
        batch = simulate_fleet_batch(scenarios)
        assert batch.horizon == 7
        mask = batch.valid_mask()
        assert mask.sum() == 2 + 7 + 4
        # Cells past a scenario's own horizon stay zero.
        assert batch.servers[0, 2:].sum() == 0
        for index, params in enumerate(scenarios):
            _assert_reports_identical(
                simulate_fleet(params), batch.reports(index)
            )

    def test_shared_embodied_model_used_once_per_sku(self):
        # Many scenarios over two SKUs: values must still match the
        # scalar runs that each recompute the embodied footprint.
        scenarios = [
            _params(server=server, annual_growth=growth)
            for server in (WEB_SERVER, STORAGE_SERVER)
            for growth in (0.0, 0.5)
        ]
        batch = simulate_fleet_batch(scenarios)
        for index, params in enumerate(scenarios):
            _assert_reports_identical(
                simulate_fleet(params), batch.reports(index)
            )


class TestBatchDerived:
    def test_capex_to_opex_matches_report_property(self):
        scenarios = [_params(), _params(renewable_ramp={0: _portfolio(900.0)})]
        batch = simulate_fleet_batch(scenarios)
        ratio = batch.capex_to_opex_market()
        fraction = batch.capex_fraction_market()
        for index, params in enumerate(scenarios):
            for year_index, report in enumerate(simulate_fleet(params)):
                assert ratio[index, year_index] == report.capex_to_opex_market
                assert (
                    fraction[index, year_index] == report.capex_fraction_market
                )

    def test_zero_market_opex_yields_inf_ratio(self):
        # A zero-carbon location grid with no contracts: market opex is
        # exactly zero and the ratio must be inf in both paths.
        zero_grid = US_GRID.intensity * 0.0
        params = _params(location_intensity=zero_grid)
        batch = simulate_fleet_batch([params])
        assert np.all(np.isinf(batch.capex_to_opex_market()[0]))
        scalar = simulate_fleet(params)
        assert scalar[0].capex_to_opex_market == math.inf
        _assert_reports_identical(scalar, batch.reports(0))

    def test_to_table_matches_scalar_unit_conversions(self):
        params = _params(renewable_ramp={1: _portfolio(200.0)})
        table = simulate_fleet_batch([params]).to_table()
        for row, report in zip(table, simulate_fleet(params)):
            assert row["year"] == report.year
            assert row["servers"] == report.servers
            assert row["energy_gwh"] == report.energy.gigawatt_hours
            assert row["opex_location_kt"] == report.opex_location.kilotonnes_value
            assert row["opex_market_kt"] == report.opex_market.kilotonnes_value
            assert row["capex_kt"] == report.capex.kilotonnes_value
            assert row["coverage"] == report.renewable_coverage
            assert row["capex_fraction_market"] == report.capex_fraction_market

    def test_final_year_table_is_last_simulated_year(self):
        scenarios = [_params(years=3), _params(years=6)]
        table = simulate_fleet_batch(scenarios).final_year_table()
        assert table.column("year") == [2016, 2019]
        for row, params in zip(table, scenarios):
            final = simulate_fleet(params)[-1]
            assert row["servers"] == final.servers
            assert row["capex_kt"] == final.capex.kilotonnes_value


class TestBatchValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            simulate_fleet_batch([])

    def test_scenario_index_bounds_checked(self):
        batch = simulate_fleet_batch([_params()])
        with pytest.raises(SimulationError):
            batch.reports(1)
        with pytest.raises(SimulationError):
            batch.reports(-1)

    def test_contracts_with_zero_demand_rejected_like_scalar(self):
        import dataclasses

        dark_server = dataclasses.replace(
            WEB_SERVER, idle_power=WEB_SERVER.idle_power * 0.0
        )
        params = _params(
            server=dark_server,
            utilization=0.0,
            renewable_ramp={0: _portfolio(10.0)},
        )
        with pytest.raises(SimulationError):
            simulate_fleet(params)
        with pytest.raises(SimulationError):
            simulate_fleet_batch([params])
