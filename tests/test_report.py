"""Tests for text-mode table and chart rendering."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.report.charts import (
    band_chart,
    bar_chart,
    line_chart,
    scatter_chart,
    sparkline,
    stacked_bar_chart,
)
from repro.report.tables import render_table
from repro.tabular import Table


class TestRenderTable:
    def test_title_underlined(self):
        table = Table({"a": [1]})
        text = render_table(table, title="hello")
        lines = text.splitlines()
        assert lines[0] == "hello"
        assert lines[1] == "====="

    def test_no_title(self):
        table = Table({"a": [1]})
        assert render_table(table).splitlines()[0].startswith("a")


class TestBarChart:
    def test_longest_bar_fills_width(self):
        chart = bar_chart(["x", "y"], [10.0, 5.0], width=20)
        first = chart.splitlines()[0]
        assert "#" * 20 in first

    def test_half_bar(self):
        chart = bar_chart(["x", "y"], [10.0, 5.0], width=20)
        second = chart.splitlines()[1]
        assert "#" * 10 in second
        assert "#" * 11 not in second

    def test_values_printed(self):
        chart = bar_chart(["x"], [3.25], value_format="{:.2f}")
        assert "3.25" in chart

    def test_zero_values_allowed(self):
        chart = bar_chart(["x"], [0.0])
        assert "|" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            bar_chart(["x"], [1.0, 2.0])

    def test_negative_values_rejected(self):
        with pytest.raises(SimulationError):
            bar_chart(["x"], [-1.0])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            bar_chart([], [])


class TestStackedBarChart:
    def test_legend_lists_components(self):
        chart = stacked_bar_chart(
            ["row"], [{"energy": 3.0, "gas": 1.0}], width=40
        )
        assert "A=energy" in chart
        assert "B=gas" in chart

    def test_totals_printed(self):
        chart = stacked_bar_chart(["row"], [{"a": 1.0, "b": 1.0}])
        assert "2.00" in chart

    def test_missing_component_treated_as_zero(self):
        chart = stacked_bar_chart(
            ["r1", "r2"], [{"a": 1.0}, {"a": 0.5, "b": 0.5}]
        )
        assert chart.count("\n") >= 2

    def test_negative_component_rejected(self):
        with pytest.raises(SimulationError):
            stacked_bar_chart(["r"], [{"a": -1.0}])


class TestLineChart:
    def test_axis_summary_present(self):
        chart = line_chart([0.0, 1.0, 2.0], {"s": [1.0, 2.0, 3.0]})
        assert "y: [" in chart
        assert "A=s" in chart

    def test_multiple_series_lettered(self):
        chart = line_chart(
            [0.0, 1.0], {"first": [1.0, 2.0], "second": [2.0, 1.0]}
        )
        assert "A=first" in chart
        assert "B=second" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            line_chart([0.0, 1.0], {"s": [1.0]})

    def test_flat_series_renders(self):
        chart = line_chart([0.0, 1.0], {"s": [5.0, 5.0]})
        assert "A" in chart


class TestScatterChart:
    def test_markers_plotted(self):
        chart = scatter_chart([(1.0, 1.0, "G"), (2.0, 2.0, "A")])
        assert "G" in chart
        assert "A" in chart

    def test_bounds_printed(self):
        chart = scatter_chart([(1.0, 2.0, "x"), (3.0, 4.0, "y")])
        assert "x: [1, 3]" in chart
        assert "y: [2, 4]" in chart

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            scatter_chart([])

    def test_degenerate_dimensions_rejected(self):
        with pytest.raises(SimulationError):
            scatter_chart([(1.0, 1.0, "x")], height=1)


class TestBandChart:
    def test_median_and_band_markers_present(self):
        chart = band_chart(
            [0.0, 1.0, 2.0],
            [1.0, 2.0, 3.0],
            [2.0, 3.0, 4.0],
            [3.0, 4.0, 5.0],
            label="capex",
        )
        assert "#" in chart
        assert ":" in chart
        assert "#=capex median" in chart
        assert "y: [1, 5]" in chart

    def test_degenerate_band_is_a_line(self):
        chart = band_chart([0.0, 1.0], [2.0, 3.0], [2.0, 3.0], [2.0, 3.0])
        # Zero-width bands collapse onto the median marker.
        assert ":" not in chart.split("\n-")[0]
        assert "#" in chart

    def test_band_must_bracket_the_median(self):
        with pytest.raises(SimulationError):
            band_chart([0.0], [2.0], [1.0], [3.0])
        with pytest.raises(SimulationError):
            band_chart([0.0], [1.0], [4.0], [3.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            band_chart([0.0, 1.0], [1.0], [1.0, 2.0], [2.0, 3.0])

    def test_empty_and_degenerate_dimensions_rejected(self):
        with pytest.raises(SimulationError):
            band_chart([], [], [], [])
        with pytest.raises(SimulationError):
            band_chart([0.0], [1.0], [1.0], [1.0], height=1)


class TestSparkline:
    def test_extremes_map_to_ramp_ends(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == " "
        assert line[-1] == "@"

    def test_flat_series_renders_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert set(line) == {" "}

    def test_long_series_bucketed_to_width(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_short_series_keeps_its_length(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=48)) == 3

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            sparkline([])

    def test_non_positive_width_rejected(self):
        with pytest.raises(SimulationError):
            sparkline([1.0], width=0)
