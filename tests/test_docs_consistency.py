"""Documentation consistency: DESIGN.md and EXPERIMENTS.md track the code.

Docs that drift from the registry are worse than no docs; these tests
fail the suite when an experiment is added without updating the record.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import EXPERIMENT_IDS

_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text() -> str:
    return (_ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_text() -> str:
    return (_ROOT / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme_text() -> str:
    return (_ROOT / "README.md").read_text()


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_every_experiment_recorded_in_experiments_md(
    experiments_text, experiment_id
):
    assert f"## {experiment_id}" in experiments_text, (
        f"{experiment_id} missing from EXPERIMENTS.md — regenerate with "
        "python -m repro.experiments.markdown"
    )


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_every_experiment_indexed_in_design_md(design_text, experiment_id):
    assert experiment_id in design_text, (
        f"{experiment_id} missing from DESIGN.md's experiment index"
    )


def test_experiments_md_reports_no_failures(experiments_text):
    assert "CHECKS FAILING" not in experiments_text


def test_every_benchmark_exists_per_paper_artifact():
    bench_dir = _ROOT / "benchmarks"
    for number in (1, 2, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14):
        assert (bench_dir / f"test_bench_fig{number:02d}.py").exists()
    for number in (1, 2, 3, 4):
        assert (bench_dir / f"test_bench_tab{number:02d}.py").exists()


def test_readme_mentions_all_examples(readme_text):
    for example in sorted((_ROOT / "examples").glob("*.py")):
        assert example.name in readme_text, f"{example.name} not in README"


def test_design_documents_the_substitutions(design_text):
    # The Monsoon substitution is the load-bearing one.
    assert "Monsoon" in design_text
    assert "Substitutions" in design_text or "substitution" in design_text
