"""Generated API reference: docs/api.md must track the code.

``tools/gen_api_docs.py`` renders the public surface into
``docs/api.md``; a committed reference that drifts from the code is
worse than none. These tests regenerate the document in-process and
require the committed file to match byte for byte, so CI rejects any
public-surface change that ships without a regenerated reference.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_GENERATOR = _ROOT / "tools" / "gen_api_docs.py"
_REFERENCE = _ROOT / "docs" / "api.md"


@pytest.fixture(scope="module")
def gen_api_docs():
    spec = importlib.util.spec_from_file_location("gen_api_docs", _GENERATOR)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def rendered(gen_api_docs) -> str:
    return gen_api_docs.render()


def test_reference_exists():
    assert _REFERENCE.exists(), (
        "docs/api.md missing; generate it with "
        "`PYTHONPATH=src python tools/gen_api_docs.py`"
    )


def test_reference_is_not_stale(rendered):
    assert _REFERENCE.read_text() == rendered, (
        "docs/api.md is stale; regenerate with "
        "`PYTHONPATH=src python tools/gen_api_docs.py`"
    )


def test_generation_is_deterministic(gen_api_docs, rendered):
    assert gen_api_docs.render() == rendered


def test_every_subpackage_has_a_section(gen_api_docs, rendered):
    for package_name in gen_api_docs.SUBPACKAGES:
        assert f"## `{package_name}`" in rendered


def test_surface_walk_matches_api_surface_suite(gen_api_docs):
    # The generator documents exactly the tree the docstring
    # enforcement suite walks; the two must not diverge.
    from test_api_surface import _SUBPACKAGES

    assert tuple(gen_api_docs.SUBPACKAGES) == tuple(_SUBPACKAGES)


def test_no_memory_addresses_leak(rendered):
    assert " at 0x" not in rendered


def test_check_mode(gen_api_docs, capsys):
    assert gen_api_docs.main(["--check"]) == 0
