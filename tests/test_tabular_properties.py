"""Property-based tests for Table invariants."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.tabular import Table

values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet="abcde", min_size=0, max_size=4),
)

records = st.lists(
    st.fixed_dictionaries({"key": st.sampled_from("pqr"), "value": values}),
    min_size=1,
    max_size=40,
)


@given(records)
def test_where_conjunction_equals_chained_filters(recs):
    table = Table.from_records(recs)
    both = table.where(lambda r: r["key"] == "p").where(
        lambda r: isinstance(r["value"], int)
    )
    conjunction = table.where(
        lambda r: r["key"] == "p" and isinstance(r["value"], int)
    )
    assert both == conjunction


@given(records)
def test_where_true_is_identity(recs):
    table = Table.from_records(recs)
    assert table.where(lambda r: True) == table


@given(records)
def test_group_sizes_sum_to_total(recs):
    table = Table.from_records(recs)
    sizes = [group.num_rows for _, group in table.group_by("key")]
    assert sum(sizes) == table.num_rows


@given(records)
def test_groups_partition_rows(recs):
    table = Table.from_records(recs)
    rebuilt = [
        row for _, group in table.group_by("key") for row in group.to_records()
    ]
    assert sorted(map(repr, rebuilt)) == sorted(map(repr, table.to_records()))


@given(
    st.lists(
        st.fixed_dictionaries(
            {"key": st.sampled_from("pqr"), "value": st.integers(-100, 100)}
        ),
        min_size=1,
        max_size=40,
    )
)
def test_aggregate_sum_conserves_total(recs):
    table = Table.from_records(recs)
    grouped = table.aggregate(by=["key"], total=("value", sum))
    assert sum(grouped.column("total")) == sum(table.column("value"))


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=50)
)
def test_sort_is_idempotent_and_ordered(values_list):
    table = Table({"v": values_list})
    once = table.sort_by("v")
    twice = once.sort_by("v")
    assert once == twice
    column = once.column("v")
    assert all(a <= b for a, b in zip(column, column[1:]))


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=50)
)
def test_sort_preserves_multiset(values_list):
    table = Table({"v": values_list})
    assert sorted(table.sort_by("v").column("v")) == sorted(values_list)


@given(records, st.integers(min_value=0, max_value=50))
def test_head_never_exceeds(recs, count):
    table = Table.from_records(recs)
    assert table.head(count).num_rows == min(count, table.num_rows)


@given(records)
def test_roundtrip_through_records(recs):
    table = Table.from_records(recs)
    assert Table.from_records(table.to_records(), columns=table.column_names) == table


@given(records)
def test_unique_values_are_subset_and_deduped(recs):
    table = Table.from_records(recs)
    unique = table.unique("key")
    assert len(unique) == len(set(unique))
    assert set(unique) == set(table.column("key"))
