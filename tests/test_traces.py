"""Tests for the traces subsystem: intensity series, profiles, workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.grids import region_names
from repro.datacenter.grid_sim import DiurnalGridModel
from repro.errors import SimulationError
from repro.traces import (
    CARBON_AGNOSTIC,
    CARBON_AWARE,
    IntensityTrace,
    WorkloadTrace,
    diurnal_workload,
    evaluate_policies,
    profile_catalog,
    regional_trace,
    renewable_ramp,
    slack_bounded,
    stochastic_variant,
    training_workload,
)


class TestIntensityTraceConstruction:
    def test_basic_construction(self):
        trace = IntensityTrace("t", [100.0, 200.0, 300.0])
        assert len(trace) == 3
        assert trace.hours == 3.0
        assert trace.mean_g_per_kwh == pytest.approx(200.0)
        assert trace.min_g_per_kwh == 100.0
        assert trace.max_g_per_kwh == 300.0

    def test_nan_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [100.0, float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [100.0, float("inf")])

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [100.0, -1.0])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [])

    def test_2d_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [[1.0, 2.0], [3.0, 4.0]])

    def test_nameless_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("", [100.0])

    def test_non_positive_step_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [100.0], step_hours=0.0)

    def test_values_are_immutable(self):
        trace = IntensityTrace("t", [100.0, 200.0])
        with pytest.raises(ValueError):
            trace.values[0] = 5.0

    def test_construction_copies_the_input(self):
        source = np.array([100.0, 200.0])
        trace = IntensityTrace("t", source)
        source[0] = 1.0
        assert trace.values[0] == 100.0

    def test_from_records_sorts_and_infers_step(self):
        trace = IntensityTrace.from_records(
            "t",
            [
                {"hour": 2.0, "g_per_kwh": 300.0},
                {"hour": 0.0, "g_per_kwh": 100.0},
                {"hour": 1.0, "g_per_kwh": 200.0},
            ],
        )
        assert list(trace.values) == [100.0, 200.0, 300.0]
        assert trace.step_hours == 1.0

    def test_from_records_rejects_irregular_spacing(self):
        with pytest.raises(SimulationError):
            IntensityTrace.from_records(
                "t",
                [
                    {"hour": 0.0, "g_per_kwh": 1.0},
                    {"hour": 1.0, "g_per_kwh": 2.0},
                    {"hour": 3.0, "g_per_kwh": 3.0},
                ],
            )

    def test_from_records_rejects_duplicate_hours(self):
        with pytest.raises(SimulationError):
            IntensityTrace.from_records(
                "t",
                [
                    {"hour": 0.0, "g_per_kwh": 1.0},
                    {"hour": 0.0, "g_per_kwh": 2.0},
                ],
            )

    def test_from_records_rejects_missing_fields(self):
        with pytest.raises(SimulationError):
            IntensityTrace.from_records("t", [{"hour": 0.0}])


class TestIntensityTraceOperations:
    def test_refine_repeats_samples(self):
        trace = IntensityTrace("t", [100.0, 200.0])
        fine = trace.resample(0.5)
        assert list(fine.values) == [100.0, 100.0, 200.0, 200.0]
        assert fine.step_hours == 0.5
        assert fine.hours == trace.hours

    def test_coarsen_block_means(self):
        trace = IntensityTrace("t", [100.0, 200.0, 300.0, 500.0], step_hours=0.5)
        coarse = trace.resample(1.0)
        assert list(coarse.values) == [150.0, 400.0]

    def test_non_hourly_round_trip_is_exact(self):
        # Piecewise-constant semantics: refine then coarsen is lossless.
        trace = IntensityTrace("t", [137.0, 260.5, 399.25, 18.125])
        for step in (0.5, 0.25):
            round_tripped = trace.resample(step).resample(1.0)
            assert np.array_equal(round_tripped.values, trace.values)
            assert round_tripped.step_hours == trace.step_hours

    def test_coarsen_requires_divisibility(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [1.0, 2.0, 3.0]).resample(2.0)

    def test_non_integer_ratio_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [1.0, 2.0]).resample(0.4)

    def test_slice_hours(self):
        trace = IntensityTrace("t", [10.0, 20.0, 30.0, 40.0])
        window = trace.slice_hours(1.0, 3.0)
        assert list(window.values) == [20.0, 30.0]

    def test_slice_beyond_trace_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [10.0, 20.0]).slice_hours(0.0, 3.0)

    def test_slice_must_align_to_step(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [10.0, 20.0]).slice_hours(0.5, 1.0)

    def test_rolling_mean_matches_manual(self):
        trace = IntensityTrace("t", [10.0, 20.0, 60.0, 100.0])
        means = trace.rolling_mean(2.0)
        assert means == pytest.approx([15.0, 40.0, 80.0])

    def test_cleanest_window_finds_valley(self):
        values = np.full(24, 500.0)
        values[10:14] = 50.0
        window = IntensityTrace("t", values).cleanest_window(4.0)
        assert window.start_hour == 10.0
        assert window.mean_g_per_kwh == pytest.approx(50.0)

    def test_cleanest_window_tie_breaks_earliest(self):
        window = IntensityTrace("t", [5.0, 5.0, 5.0, 5.0]).cleanest_window(2.0)
        assert window.start_hour == 0.0

    def test_window_longer_than_trace_rejected(self):
        with pytest.raises(SimulationError):
            IntensityTrace("t", [1.0, 2.0]).cleanest_window(3.0)

    def test_scale_validates_result(self):
        trace = IntensityTrace("t", [100.0, 200.0])
        assert list(trace.scale(0.5).values) == [50.0, 100.0]
        with pytest.raises(SimulationError):
            trace.scale(-1.0)

    def test_align_resamples_and_truncates(self):
        left = IntensityTrace("a", [100.0, 200.0, 300.0])
        right = IntensityTrace("b", [10.0] * 4, step_hours=0.5)
        aligned_left, aligned_right = left.align(right)
        assert aligned_left.step_hours == 0.5
        assert aligned_right.step_hours == 0.5
        assert aligned_left.hours == aligned_right.hours == 2.0
        assert list(aligned_left.values) == [100.0, 100.0, 200.0, 200.0]


class TestProfiles:
    def test_catalog_covers_every_region(self):
        catalog = profile_catalog(48)
        for name in region_names():
            assert name in catalog
            assert f"{name}_noisy_s0" in catalog
            assert f"{name}_ramp50" in catalog

    def test_catalog_traces_share_horizon(self):
        catalog = profile_catalog(48)
        assert {len(trace) for trace in catalog.values()} == {48}

    def test_regional_mean_tracks_table_iii_ordering(self):
        # Dirtier regions produce dirtier duck curves.
        india = regional_trace("india", 24)
        iceland = regional_trace("iceland", 24)
        assert india.mean_g_per_kwh > 10 * iceland.mean_g_per_kwh

    def test_stochastic_variant_is_seeded(self):
        a = stochastic_variant("world", 24, seed=7)
        b = stochastic_variant("world", 24, seed=7)
        assert np.array_equal(a.values, b.values)
        c = stochastic_variant("world", 24, seed=8)
        assert not np.array_equal(a.values, c.values)

    def test_renewable_ramp_tapers_but_stays_positive(self):
        base = regional_trace("united_states", 48)
        ramped = renewable_ramp(base, 0.5)
        assert ramped.values[0] == base.values[0]
        assert ramped.values[-1] == pytest.approx(0.5 * base.values[-1])
        assert np.all(ramped.values > 0.0)

    def test_ramp_fraction_validated(self):
        base = regional_trace("world", 24)
        with pytest.raises(SimulationError):
            renewable_ramp(base, 1.0)
        with pytest.raises(SimulationError):
            renewable_ramp(base, -0.1)

    def test_grid_model_trace_bridge(self):
        model = DiurnalGridModel()
        trace = model.trace(48)
        assert np.array_equal(trace.values, model.hourly_series(48))


class TestCleanestHourDelegation:
    def test_matches_legacy_scalar_scan(self):
        for model in (
            DiurnalGridModel(),
            DiurnalGridModel(base_g_per_kwh=600.0, evening_peak_g_per_kwh=10.0),
        ):
            legacy = int(
                np.argmin(
                    [model.intensity_at(float(h)).grams_per_kwh for h in range(24)]
                )
            )
            assert model.cleanest_hour() == legacy

    def test_noise_does_not_move_the_cleanest_hour(self):
        assert (
            DiurnalGridModel(noise_g_per_kwh=50.0, seed=3).cleanest_hour()
            == DiurnalGridModel().cleanest_hour()
        )

    def test_deprecation_warns_once_per_process(self, monkeypatch):
        import warnings

        from repro.datacenter import grid_sim

        monkeypatch.setattr(grid_sim, "_CLEANEST_HOUR_WARNED", False)
        model = DiurnalGridModel()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):  # a batched loop's worth of calls
                model.cleanest_hour()
        deprecations = [
            warning
            for warning in caught
            if issubclass(warning.category, DeprecationWarning)
            and "cleanest_hour" in str(warning.message)
        ]
        assert len(deprecations) == 1
        assert "cleanest_window" in str(deprecations[0].message)
        # The once-guard stays latched for subsequent callers.
        assert grid_sim._CLEANEST_HOUR_WARNED


class TestWorkloadTrace:
    def test_generators_are_seeded(self):
        a = diurnal_workload(2, seed=5)
        b = diurnal_workload(2, seed=5)
        assert a.jobs == b.jobs
        assert training_workload(6, seed=9).jobs == training_workload(6, seed=9).jobs

    def test_span_covers_every_job(self):
        workload = diurnal_workload(2)
        for job in workload.jobs:
            assert job.arrival_hour + job.duration_hours <= workload.span_hours

    def test_from_records(self):
        workload = WorkloadTrace.from_records(
            "w",
            [
                {"name": "a", "duration_hours": 2, "power_kw": 100.0},
                {
                    "name": "b",
                    "duration_hours": 1,
                    "power_kw": 50.0,
                    "arrival_hour": 3,
                    "deadline_hour": 6,
                },
            ],
        )
        assert len(workload) == 2
        assert workload.jobs[1].deadline_hour == 6
        assert workload.total_energy_kwh == pytest.approx(250.0)
        assert workload.peak_power_kw == 100.0

    def test_from_records_missing_fields_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadTrace.from_records("w", [{"name": "a"}])

    def test_duplicate_job_names_rejected(self):
        from repro.datacenter.scheduler import BatchJob

        job = BatchJob("a", 1, 10.0)
        with pytest.raises(SimulationError):
            WorkloadTrace("w", (job, job))

    def test_empty_workload_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadTrace("w", ())


class TestEvaluatorEdges:
    def test_trace_shorter_than_job_horizon_raises(self):
        short = IntensityTrace("short", np.full(8, 300.0))
        workload = WorkloadTrace.from_records(
            "w", [{"name": "a", "duration_hours": 6, "power_kw": 100.0,
                   "arrival_hour": 4}]
        )
        with pytest.raises(SimulationError):
            evaluate_policies([short], [workload], capacity_kw=500.0)

    def test_policy_slack_must_be_non_negative(self):
        with pytest.raises(SimulationError):
            slack_bounded(-1)

    def test_policy_lowering_tightens_never_loosens(self):
        workload = WorkloadTrace.from_records(
            "w",
            [
                {"name": "tight", "duration_hours": 2, "power_kw": 10.0,
                 "deadline_hour": 3},
                {"name": "open", "duration_hours": 2, "power_kw": 10.0},
            ],
        )
        lowered = slack_bounded(8).lower(workload.jobs)
        assert lowered[0].deadline_hour == 3  # already tighter than slack
        assert lowered[1].deadline_hour == 10  # 0 + 2 + 8

    def test_duplicate_trace_names_rejected(self):
        trace = IntensityTrace("dup", np.full(24, 300.0))
        workload = diurnal_workload(1)
        with pytest.raises(SimulationError):
            evaluate_policies([trace, trace], [workload], capacity_kw=5000.0)

    def test_duplicate_policy_names_rejected(self):
        trace = IntensityTrace("t", np.full(48, 300.0))
        workload = diurnal_workload(1)
        with pytest.raises(SimulationError):
            evaluate_policies(
                [trace],
                [workload],
                [CARBON_AWARE, slack_bounded(4), CARBON_AWARE],
                capacity_kw=5000.0,
            )

    def test_zero_carbon_trace_reports_zero_savings(self):
        # A fully decarbonized grid is a legal trace; savings ratios
        # must come back 0, not NaN.
        zero = IntensityTrace("zero", np.zeros(48))
        workload = diurnal_workload(1)
        table = evaluate_policies([zero], [workload], capacity_kw=5000.0)
        savings = np.asarray(table.column("savings_fraction"), dtype=float)
        assert np.array_equal(savings, np.zeros(len(savings)))

    def test_savings_ordering_on_a_valley_grid(self):
        values = np.full(48, 500.0)
        values[20:30] = 50.0
        trace = IntensityTrace("valley", values)
        workload = WorkloadTrace.from_records(
            "w",
            [
                {"name": "a", "duration_hours": 4, "power_kw": 100.0},
                {"name": "b", "duration_hours": 4, "power_kw": 100.0,
                 "deadline_hour": 10},
            ],
        )
        table = evaluate_policies(
            [trace],
            [workload],
            [CARBON_AGNOSTIC, CARBON_AWARE, slack_bounded(2)],
            capacity_kw=500.0,
        )
        savings = dict(zip(table.column("policy"), table.column("savings_fraction")))
        assert savings["agnostic"] == 0.0
        assert savings["aware"] > savings["slack2"] >= 0.0
        deferral = dict(
            zip(table.column("policy"), table.column("max_deferral_hours"))
        )
        assert deferral["slack2"] <= 2.0
        assert deferral["aware"] >= 16.0  # job 'a' slid into the valley
