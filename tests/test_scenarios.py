"""Tests for the scenario engine: grids, overrides, batched sweeps."""

from __future__ import annotations

import pytest

from repro.datacenter.fleet import simulate_fleet
from repro.errors import SimulationError
from repro.scenarios import (
    SWEEPS,
    OverridePlan,
    ScenarioGrid,
    ScenarioSet,
    apply_overrides,
    facebook_like_fleet,
    fleet_scenario_parameters,
    run_sweep,
    sweep_fleet,
    sweep_names,
    sweep_provisioning,
)
from repro.scenarios.presets import example_service_mix


class TestScenarioGrid:
    def test_cartesian_product_row_major(self):
        grid = ScenarioGrid(a=[1, 2], b=["x", "y", "z"])
        assert len(grid) == 6
        scenarios = grid.scenarios()
        assert scenarios[0] == {"a": 1, "b": "x"}
        assert scenarios[1] == {"a": 1, "b": "y"}
        assert scenarios[3] == {"a": 2, "b": "x"}

    def test_to_table_one_row_per_scenario(self):
        table = ScenarioGrid(a=[1, 2], b=[0.5]).to_table()
        assert table.num_rows == 2
        assert table.column_names == ["a", "b"]

    def test_empty_axes_rejected(self):
        with pytest.raises(SimulationError):
            ScenarioGrid()
        with pytest.raises(SimulationError):
            ScenarioGrid(a=[])


class TestScenarioSet:
    def test_zipped_lockstep(self):
        scenarios = ScenarioSet.zipped(a=[1, 2], b=[10, 20]).scenarios()
        assert scenarios == [{"a": 1, "b": 10}, {"a": 2, "b": 20}]

    def test_zipped_requires_equal_lengths(self):
        with pytest.raises(SimulationError):
            ScenarioSet.zipped(a=[1, 2], b=[10])

    def test_records_must_share_parameters(self):
        with pytest.raises(SimulationError):
            ScenarioSet([{"a": 1}, {"b": 2}])
        with pytest.raises(SimulationError):
            ScenarioSet([])


class TestApplyOverrides:
    def test_top_level_and_dotted_paths(self):
        base = facebook_like_fleet()
        changed = apply_overrides(
            base,
            {
                "annual_growth": 0.5,
                "server.lifetime_years": 2.0,
                "facility.pue": 1.3,
            },
        )
        assert changed.annual_growth == 0.5
        assert changed.server.lifetime_years == 2.0
        assert changed.facility.pue == 1.3
        # Untouched fields are shared, and the base is unchanged.
        assert changed.initial_servers == base.initial_servers
        assert base.annual_growth == 0.25

    def test_unknown_field_rejected(self):
        base = facebook_like_fleet()
        with pytest.raises(SimulationError):
            apply_overrides(base, {"not_a_field": 1})
        with pytest.raises(SimulationError):
            apply_overrides(base, {"server.not_a_field": 1})
        with pytest.raises(SimulationError):
            apply_overrides(base, {"annual_growth.too_deep": 1})


class TestOverridePlan:
    def test_matches_sequential_apply_overrides(self):
        base = facebook_like_fleet()
        overrides = {
            "annual_growth": 0.4,
            "server.lifetime_years": 2.5,
            "server.idle_power": base.server.idle_power,
            "facility.pue": 1.35,
        }
        plan = OverridePlan(base, list(overrides))
        assert plan.apply(base, overrides) == apply_overrides(base, overrides)
        # The compiled plan is reusable across value sets.
        second = dict(overrides, annual_growth=0.1)
        assert plan.apply(base, second) == apply_overrides(base, second)

    def test_paths_validated_at_compile_time(self):
        base = facebook_like_fleet()
        with pytest.raises(SimulationError):
            OverridePlan(base, ["not_a_field"])
        with pytest.raises(SimulationError):
            OverridePlan(base, ["server.not_a_field"])
        with pytest.raises(SimulationError):
            OverridePlan(base, ["utilization", "utilization"])
        # A path may not overlap another path's prefix.
        with pytest.raises(SimulationError):
            OverridePlan(base, ["server", "server.lifetime_years"])

    def test_value_set_must_cover_the_plan(self):
        base = facebook_like_fleet()
        plan = OverridePlan(base, ["utilization", "facility.pue"])
        with pytest.raises(SimulationError):
            plan.apply(base, {"utilization": 0.5})
        # Same cardinality but wrong keys is a diagnostic, not KeyError.
        with pytest.raises(SimulationError):
            plan.apply(base, {"utilization": 0.5, "facility.puee": 1.2})


class TestDistributionGuards:
    def test_fleet_scenario_parameters_reject_tagged_values(self):
        from repro.analysis.uncertainty import Normal

        with pytest.raises(SimulationError, match="--draws"):
            fleet_scenario_parameters(
                facebook_like_fleet(), [{"utilization": Normal(0.5, 0.1)}]
            )


class TestSweepFleet:
    def test_matches_per_scenario_scalar_runs(self):
        base = facebook_like_fleet()
        grid = ScenarioGrid(
            **{
                "annual_growth": [0.0, 0.25],
                "server.lifetime_years": [2.0, 4.0],
            }
        )
        table = sweep_fleet(base, grid)
        assert table.num_rows == len(grid)
        for row, params in zip(
            table, fleet_scenario_parameters(base, grid)
        ):
            final = simulate_fleet(params)[-1]
            assert row["servers"] == final.servers
            assert row["capex_kt"] == final.capex.kilotonnes_value
            assert row["opex_market_kt"] == final.opex_market.kilotonnes_value
            assert row["capex_fraction_market"] == final.capex_fraction_market

    def test_axis_columns_present(self):
        table = sweep_fleet(
            facebook_like_fleet(), ScenarioGrid(annual_growth=[0.1, 0.2])
        )
        assert table.column("annual_growth") == [0.1, 0.2]


class TestSweepProvisioning:
    def test_savings_positive_across_grid(self):
        workloads, general, server_types = example_service_mix()
        table = sweep_provisioning(
            workloads,
            general,
            server_types,
            utilization_targets=[0.5, 0.7],
            demand_scales=[1.0, 2.0],
        )
        assert table.num_rows == 4
        for row in table:
            assert row["servers_heterogeneous"] < row["servers_homogeneous"]
            assert 0.0 < row["carbon_saving_fraction"] < 1.0


class TestNamedSweeps:
    def test_every_named_sweep_runs(self):
        assert sweep_names() == list(SWEEPS)
        for name in sweep_names():
            table = run_sweep(name)
            assert table.num_rows >= 4, name

    def test_unknown_sweep_rejected(self):
        with pytest.raises(SimulationError):
            run_sweep("nope")
