"""Tests for the Monsoon power-monitor simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mobile.inference import InferenceSimulator
from repro.mobile.power_monitor import MonsoonSimulator, PowerTrace
from repro.units import Power


@pytest.fixture
def estimate(simulator: InferenceSimulator):
    return simulator.estimate("mobilenet_v3", "cpu")


class TestPowerTrace:
    def test_constant_trace_energy(self):
        trace = PowerTrace(np.full(5001, 2.0), 5000.0)
        assert trace.energy().joules == pytest.approx(2.0, rel=1e-6)

    def test_average_and_peak(self):
        trace = PowerTrace(np.array([1.0, 3.0, 2.0]), 10.0)
        assert trace.average_power.watts_value == pytest.approx(2.0)
        assert trace.peak_power.watts_value == pytest.approx(3.0)

    def test_duration(self):
        trace = PowerTrace(np.zeros(11), 10.0)
        assert trace.duration_s == pytest.approx(1.0)

    def test_above_threshold_fraction(self):
        trace = PowerTrace(np.array([0.0, 1.0, 2.0, 3.0]), 1.0)
        assert trace.above(1.5) == pytest.approx(0.5)

    def test_negative_samples_rejected(self):
        with pytest.raises(SimulationError):
            PowerTrace(np.array([1.0, -1.0]), 10.0)

    def test_too_short_rejected(self):
        with pytest.raises(SimulationError):
            PowerTrace(np.array([1.0]), 10.0)

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(SimulationError):
            PowerTrace(np.array([1.0, 1.0]), 0.0)


class TestMonsoonSimulator:
    def test_constant_measurement_close_to_ideal(self):
        monsoon = MonsoonSimulator(noise_fraction=0.01, seed=3)
        trace = monsoon.constant(Power.watts(5.0), 1.0)
        assert trace.average_power.watts_value == pytest.approx(5.0, rel=0.02)

    def test_noiseless_trace_is_exact(self):
        monsoon = MonsoonSimulator(noise_fraction=0.0)
        trace = monsoon.constant(Power.watts(5.0), 1.0)
        assert trace.average_power.watts_value == pytest.approx(5.0)

    def test_same_seed_reproduces_trace(self):
        a = MonsoonSimulator(seed=42).constant(Power.watts(3.0), 0.5)
        b = MonsoonSimulator(seed=42).constant(Power.watts(3.0), 0.5)
        assert np.array_equal(a.samples_w, b.samples_w)

    def test_different_seeds_differ(self):
        a = MonsoonSimulator(seed=1).constant(Power.watts(3.0), 0.5)
        b = MonsoonSimulator(seed=2).constant(Power.watts(3.0), 0.5)
        assert not np.array_equal(a.samples_w, b.samples_w)

    def test_burst_energy_matches_analytic(self, estimate):
        monsoon = MonsoonSimulator(noise_fraction=0.0)
        trace = monsoon.inference_burst(estimate, 100, idle_power_w=0.0)
        expected = estimate.energy_per_inference.joules * 100
        assert trace.energy().joules == pytest.approx(expected, rel=0.02)

    def test_gaps_lower_average_power(self, estimate):
        monsoon = MonsoonSimulator(noise_fraction=0.0)
        dense = monsoon.inference_burst(estimate, 20, idle_power_w=0.3)
        sparse = monsoon.inference_burst(
            estimate, 20, idle_power_w=0.3, inter_arrival_s=0.05
        )
        assert (
            sparse.average_power.watts_value < dense.average_power.watts_value
        )

    def test_measure_energy_per_inference_subtracts_idle(self, estimate):
        monsoon = MonsoonSimulator(noise_fraction=0.0)
        gross = monsoon.inference_burst(estimate, 50, idle_power_w=0.0)
        net = monsoon.measure_energy_per_inference(estimate, 50, idle_power_w=0.35)
        per_inference_gross = gross.energy().joules / 50
        assert net.joules < per_inference_gross
        # Net = (P_active - P_idle) * latency, within sampling error.
        expected = (
            (estimate.power.watts_value - 0.35) * estimate.latency_s
        )
        assert net.joules == pytest.approx(expected, rel=0.03)

    def test_invalid_parameters_rejected(self, estimate):
        monsoon = MonsoonSimulator()
        with pytest.raises(SimulationError):
            monsoon.constant(Power.watts(1.0), 0.0)
        with pytest.raises(SimulationError):
            monsoon.inference_burst(estimate, 0, idle_power_w=0.0)
        with pytest.raises(SimulationError):
            monsoon.inference_burst(estimate, 1, idle_power_w=-1.0)
        with pytest.raises(SimulationError):
            MonsoonSimulator(sample_rate_hz=0.0)
        with pytest.raises(SimulationError):
            MonsoonSimulator(noise_fraction=1.0)
