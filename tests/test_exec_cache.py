"""The on-disk result cache: keys, atomicity, and registry/CLI reuse.

The cache's contract has three legs: keys are content-addressed (any
``repro`` source edit orphans every entry; key parts never collide by
concatenation), reads degrade to misses on *any* corruption, and the
experiments registry plus the ``repro run``/``repro sweep`` CLI share
one directory across processes so repeated invocations warm-start.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cli import main
from repro.errors import ExecutionError
from repro.exec import (
    CheckpointStore,
    ResultCache,
    cache_key,
    default_cache_dir,
    package_fingerprint,
)
from repro.experiments import registry as experiment_registry
from repro.experiments import clear_result_cache, run_all, run_experiment
from repro.experiments.result import ExperimentResult
from repro.tabular import Table


class TestCacheKeys:
    def test_key_is_hex_digest(self):
        key = cache_key("sweep", "name", 8, 0)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_parts_do_not_collide_by_concatenation(self):
        assert cache_key("ab", "c") != cache_key("a", "bc")
        assert cache_key("a", "") != cache_key("a")

    def test_empty_key_rejected(self):
        with pytest.raises(ExecutionError):
            cache_key()

    def test_package_fingerprint_is_stable_hex(self):
        first = package_fingerprint()
        assert first == package_fingerprint()
        assert len(first) == 64

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
        assert default_cache_dir() == tmp_path / "explicit"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"
        monkeypatch.delenv("XDG_CACHE_HOME")
        assert default_cache_dir().name == "repro"

    def test_malformed_keys_rejected(self):
        cache = ResultCache("unused")
        for key in ("", "a/b", "a\\b", "a.b"):
            with pytest.raises(ExecutionError):
                cache.path_for(key)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        table = Table({"x": [1.0, 2.0], "label": ["a", "b"]})
        key = cache_key("test", "round-trip")
        assert cache.get(key) is None
        cache.put(key, table)
        assert cache.get(key) == table
        assert cache.path_for(key).exists()

    def test_put_is_best_effort_on_unwritable_locations(self, tmp_path):
        # The cache is an accelerator: a run that already computed its
        # result must never crash while memoizing it.
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        cache = ResultCache(blocker / "nested")
        key = cache_key("test", "unwritable")
        assert cache.put(key, [1, 2, 3]) is False
        assert cache.get(key) is None

    def test_put_reports_success(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put(cache_key("test", "ok"), 42) is True

    def test_put_swallows_unpicklable_values(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("test", "unpicklable")
        assert cache.put(key, lambda: None) is False
        assert cache.get(key) is None
        leftovers = list((tmp_path / "v1").glob("*.tmp"))
        assert leftovers == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("test", "corrupt")
        cache.put(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key, default="fallback") == "fallback"
        truncated = pickle.dumps([1, 2, 3])[:-4]
        cache.path_for(key).write_bytes(truncated)
        assert cache.get(key) is None
        # Bytes that *do* parse as pickle opcodes but blow up inside the
        # VM (here: a REDUCE calling len() with the wrong arity) must
        # also read as a miss, not crash the consulting sweep.
        cache.path_for(key).write_bytes(b"c__builtin__\nlen\n(tR.")
        assert cache.get(key, default="fallback") == "fallback"

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(5):
            cache.put(cache_key("test", index), index)
        leftovers = [p for p in (tmp_path / "v1").iterdir() if p.suffix != ".pkl"]
        assert leftovers == []

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(cache_key("test", index), index)
        assert cache.clear() == 3
        assert cache.get(cache_key("test", 0)) is None
        assert cache.clear() == 0

    def test_clear_sweeps_orphaned_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key("test", "entry"), 1)
        # A writer killed between mkstemp and os.replace leaves a .tmp.
        orphan = tmp_path / "v1" / ".deadbeef-orphan.tmp"
        orphan.write_bytes(b"partial write")
        assert cache.clear() == 1
        assert not orphan.exists()


class TestRegistryDiskCache:
    def _count_runs(self, call):
        calls = {"count": 0}
        original = experiment_registry.get_experiment

        def counting(experiment_id):
            calls["count"] += 1
            return original(experiment_id)

        experiment_registry.get_experiment = counting
        try:
            result = call()
        finally:
            experiment_registry.get_experiment = original
        return calls["count"], result

    def test_disk_cache_survives_in_process_cache_clear(self, tmp_path):
        clear_result_cache()
        first = run_experiment("tab01", cache_dir=tmp_path)
        assert list((tmp_path / "v1").glob("*.pkl"))
        # A fresh process has no in-process entries; simulate that and
        # check the driver is not re-run.
        clear_result_cache()
        runs, second = self._count_runs(
            lambda: run_experiment("tab01", cache_dir=tmp_path)
        )
        assert runs == 0
        assert second.title == first.title
        assert second.tables.keys() == first.tables.keys()
        clear_result_cache()

    def test_wrong_typed_disk_entry_is_recomputed(self, tmp_path):
        clear_result_cache()
        run_experiment("tab01", cache_dir=tmp_path)
        entry = next((tmp_path / "v1").glob("*.pkl"))
        entry.write_bytes(pickle.dumps("not an ExperimentResult"))
        clear_result_cache()
        runs, result = self._count_runs(
            lambda: run_experiment("tab01", cache_dir=tmp_path)
        )
        assert runs == 1
        assert isinstance(result, ExperimentResult)
        clear_result_cache()

    def test_run_all_reuses_disk_entries(self, tmp_path):
        clear_result_cache()
        warm = run_all(cache_dir=tmp_path)
        assert len(list((tmp_path / "v1").glob("*.pkl"))) == len(warm)
        clear_result_cache()
        runs, results = self._count_runs(lambda: run_all(cache_dir=tmp_path))
        assert runs == 0
        assert list(results) == list(warm)
        clear_result_cache()


class TestCliCache:
    def test_sweep_cache_dir_warm_start(self, tmp_path, capsys):
        argv = [
            "sweep",
            "fleet_growth_lifetime",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert list((tmp_path / "v1").glob("*.pkl"))
        assert main(argv) == 0
        assert capsys.readouterr().out == cold

    def test_sweep_draws_cache_dir_warm_start(self, tmp_path, capsys):
        argv = [
            "sweep",
            "provisioning_mix",
            "--draws",
            "8",
            "--seed",
            "3",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == cold
        # A different seed is a different key, not a stale hit.
        assert main(argv[:-4] + ["--seed", "4", "--cache-dir", str(tmp_path)]) == 0
        assert "seed 4" in capsys.readouterr().out

    def test_sweep_jobs_share_one_cache_entry(self, tmp_path, capsys):
        argv = ["sweep", "provisioning_mix", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        entries = sorted((tmp_path / "v1").glob("*.pkl"))
        # Sharded runs are bit-identical, so jobs/chunk-size are not in
        # the key: the warm entry serves every parallelism level.
        assert main(argv + ["--jobs", "2", "--chunk-size", "3"]) == 0
        capsys.readouterr()
        assert sorted((tmp_path / "v1").glob("*.pkl")) == entries

    def test_run_all_cache_dir_warm_start(self, tmp_path, capsys):
        clear_result_cache()
        argv = ["run", "all", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        clear_result_cache()
        assert main(argv) == 0
        assert capsys.readouterr().out == cold
        clear_result_cache()

    def test_no_cache_conflicts_with_cache_dir(self, tmp_path, capsys):
        assert main(
            [
                "sweep",
                "fleet_growth_lifetime",
                "--no-cache",
                "--cache-dir",
                str(tmp_path),
            ]
        ) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_no_cache_writes_nothing(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "fleet_growth_lifetime", "--no-cache"]) == 0
        capsys.readouterr()
        assert not list(tmp_path.rglob("*.pkl"))

    def test_default_cache_dir_used_without_flags(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "fleet_growth_lifetime"]) == 0
        capsys.readouterr()
        assert list(tmp_path.rglob("*.pkl"))


# ----------------------------------------------------------------------
# Concurrent-writer stress and checkpoint-namespace hygiene


def _blob(writer: int) -> bytes:
    """A payload whose integrity is checkable from its own content."""
    return bytes([writer % 256]) * 65536


def _hammer_cache(directory: str, key: str, writer: int, rounds: int) -> None:
    """Worker: race put/get on one ResultCache key; die on a torn read."""
    import warnings

    # A corrupt entry surfaces as a RuntimeWarning miss — with atomic
    # temp+rename writes a reader must only ever see a complete entry,
    # so any corruption here is a failure, not a degradation.
    warnings.simplefilter("error", RuntimeWarning)
    cache = ResultCache(directory)
    for _ in range(rounds):
        assert cache.put(key, {"writer": writer, "blob": _blob(writer)})
        value = cache.get(key)
        if value is not None:
            assert value["blob"] == _blob(value["writer"])
    assert cache.stats.corrupt == 0


def _hammer_checkpoints(directory: str, writer: int, rounds: int) -> None:
    """Worker: race put/get on one CheckpointStore chunk range."""
    import warnings

    warnings.simplefilter("error", RuntimeWarning)
    store = CheckpointStore(
        directory, spec_parts=("stress", "shared"), consume=True
    )
    for _ in range(rounds):
        assert store.put(0, 64, {"writer": writer, "blob": _blob(writer)})
        hit, value = store.get(0, 64)
        if hit:
            assert value["blob"] == _blob(value["writer"])


class TestConcurrentWriters:
    """Processes racing temp+rename on one key never tear a read."""

    WRITERS = 4
    ROUNDS = 120

    def _race(self, target, args_for):
        import multiprocessing

        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(target=target, args=args_for(writer))
            for writer in range(self.WRITERS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        codes = [worker.exitcode for worker in workers]
        assert codes == [0] * self.WRITERS, codes

    def test_result_cache_same_key_stress(self, tmp_path):
        key = "f" * 64
        self._race(
            _hammer_cache,
            lambda writer: (str(tmp_path), key, writer, self.ROUNDS),
        )
        # While the storm ran, each write was atomic; afterwards the
        # entry is one writer's complete payload.
        reader = ResultCache(tmp_path)
        value = reader.get(key)
        assert value is not None
        assert value["blob"] == _blob(value["writer"])
        assert reader.stats.corrupt == 0
        # No orphaned temp files survived the racing mkstemp/replace.
        schema_dir = tmp_path / "v1"
        assert not list(schema_dir.glob("*.tmp"))

    def test_checkpoint_store_same_range_stress(self, tmp_path):
        self._race(
            _hammer_checkpoints,
            lambda writer: (str(tmp_path), writer, self.ROUNDS),
        )
        store = CheckpointStore(
            tmp_path, spec_parts=("stress", "shared"), consume=True
        )
        hit, value = store.get(0, 64)
        assert hit
        assert value["blob"] == _blob(value["writer"])


def _range_chunk(payload, start, stop):
    """Module-level chunk kernel for the checkpoint-lifecycle test."""
    return [value * 3 for value in payload[start:stop]]


class TestCheckpointNamespace:
    """complete()/clear() leave no stale checkpoints behind."""

    def test_complete_removes_stale_geometry_entries(self, tmp_path):
        store = CheckpointStore(
            tmp_path, spec_parts=("sweep", "x"), consume=True
        )
        # Two chunk geometries of the same spec — a range-by-range
        # discard driven by either plan could never name the other's.
        store.put(0, 5, "a")
        store.put(5, 10, "b")
        store.put(0, 10, "stale geometry")
        assert store.complete() == 3
        assert not store.directory.exists()
        fresh = CheckpointStore(
            tmp_path, spec_parts=("sweep", "x"), consume=True
        )
        assert fresh.get(0, 10) == (False, None)

    def test_complete_leaves_other_specs_alone(self, tmp_path):
        mine = CheckpointStore(tmp_path, spec_parts=("a",), consume=True)
        other = CheckpointStore(tmp_path, spec_parts=("b",), consume=True)
        mine.put(0, 5, "mine")
        other.put(0, 5, "other")
        mine.complete()
        assert other.get(0, 5) == (True, "other")

    def test_result_cache_clear_sweeps_checkpoint_tree(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, {"result": 1})
        store = CheckpointStore(tmp_path, spec_parts=("s",), consume=True)
        store.put(0, 5, "chunk")
        # Checkpoints are swept alongside the results that supersede
        # them but do not count toward the removed-entry total.
        assert cache.clear() == 1
        assert not (tmp_path / "checkpoints").exists()
        fresh = CheckpointStore(tmp_path, spec_parts=("s",), consume=True)
        assert fresh.get(0, 5) == (False, None)

    def test_sharded_success_completes_the_namespace(self, tmp_path):
        from repro.exec import ShardPlan, run_sharded

        store = CheckpointStore(
            tmp_path, spec_parts=("sweep", "lifecycle"), consume=False
        )
        # Leftover from a hypothetical earlier run under a different
        # chunk geometry: the success path must remove it too.
        store.put(3, 17, "stale leftover")
        plan = ShardPlan(num_scenarios=20, chunk_size=5)
        payload = list(range(20))
        result = run_sharded(
            _range_chunk,
            payload,
            plan,
            jobs=1,
            combine=lambda chunks: [v for chunk in chunks for v in chunk],
            checkpoint=store,
        )
        assert result == [value * 3 for value in payload]
        assert not store.directory.exists()
