"""Tests for the GHG-Protocol accounting engine."""

from __future__ import annotations

import pytest

from repro.core.ghg import (
    GHGEntry,
    GHGInventory,
    OpexCapex,
    ReportSeries,
    Scope,
    ScopeTaxonomy,
    default_classification,
)
from repro.errors import AccountingError
from repro.units import Carbon


@pytest.fixture
def inventory() -> GHGInventory:
    inv = GHGInventory("acme", 2019)
    inv.add(Scope.SCOPE1, "facility_fuel", Carbon.kilotonnes(50.0))
    inv.add(Scope.SCOPE2_LOCATION, "purchased_electricity", Carbon.kilotonnes(1900.0))
    inv.add(Scope.SCOPE2_MARKET, "purchased_electricity", Carbon.kilotonnes(252.0))
    inv.add(Scope.SCOPE3_UPSTREAM, "capital_goods", Carbon.kilotonnes(2784.0))
    inv.add(Scope.SCOPE3_UPSTREAM, "purchased_goods", Carbon.kilotonnes(2262.0))
    inv.add(Scope.SCOPE3_UPSTREAM, "business_travel", Carbon.kilotonnes(580.0))
    inv.add(
        Scope.SCOPE3_UPSTREAM, "other", Carbon.kilotonnes(174.0),
        classification=OpexCapex.OTHER,
    )
    return inv


class TestDefaultClassification:
    def test_scope1_and_2_are_opex(self):
        assert default_classification(Scope.SCOPE1, "fuel") is OpexCapex.OPEX
        assert (
            default_classification(Scope.SCOPE2_MARKET, "electricity")
            is OpexCapex.OPEX
        )

    def test_scope3_goods_are_capex(self):
        assert (
            default_classification(Scope.SCOPE3_UPSTREAM, "capital_goods")
            is OpexCapex.CAPEX
        )

    def test_travel_and_commuting_are_other(self):
        assert (
            default_classification(Scope.SCOPE3_UPSTREAM, "business_travel")
            is OpexCapex.OTHER
        )
        assert (
            default_classification(Scope.SCOPE3_UPSTREAM, "employee_commuting")
            is OpexCapex.OTHER
        )

    def test_use_of_sold_products_is_opex(self):
        assert (
            default_classification(Scope.SCOPE3_DOWNSTREAM, "use_of_sold products")
            is OpexCapex.OPEX
        )


class TestGHGEntry:
    def test_negative_emissions_rejected(self):
        with pytest.raises(AccountingError):
            GHGEntry(Scope.SCOPE1, "fuel", Carbon.kg(-1.0), OpexCapex.OPEX)

    def test_empty_category_rejected(self):
        with pytest.raises(AccountingError):
            GHGEntry(Scope.SCOPE1, "", Carbon.kg(1.0), OpexCapex.OPEX)


class TestInventoryTotals:
    def test_scope_total(self, inventory):
        assert inventory.scope_total(Scope.SCOPE1).kilotonnes_value == pytest.approx(
            50.0
        )

    def test_scope3_total(self, inventory):
        assert inventory.scope3_total().kilotonnes_value == pytest.approx(5800.0)

    def test_total_market_excludes_location_scope2(self, inventory):
        total = inventory.total(market_based=True)
        assert total.kilotonnes_value == pytest.approx(50 + 252 + 5800)

    def test_total_location_excludes_market_scope2(self, inventory):
        total = inventory.total(market_based=False)
        assert total.kilotonnes_value == pytest.approx(50 + 1900 + 5800)

    def test_scope3_to_scope2_ratio(self, inventory):
        assert inventory.scope3_to_scope2_ratio() == pytest.approx(5800 / 252)

    def test_ratio_with_zero_scope2_raises(self):
        inv = GHGInventory("x", 2020)
        inv.add(Scope.SCOPE3_UPSTREAM, "goods", Carbon.kg(1.0))
        with pytest.raises(AccountingError):
            inv.scope3_to_scope2_ratio()


class TestOpexCapexSplit:
    def test_split_sums_match_entries(self, inventory):
        split = inventory.opex_capex_split()
        assert split[OpexCapex.OPEX].kilotonnes_value == pytest.approx(302.0)
        assert split[OpexCapex.CAPEX].kilotonnes_value == pytest.approx(5046.0)
        assert split[OpexCapex.OTHER].kilotonnes_value == pytest.approx(754.0)

    def test_opex_fraction_market_vs_location_differ(self, inventory):
        market = inventory.opex_fraction(market_based=True)
        location = inventory.opex_fraction(market_based=False)
        assert market < location

    def test_capex_fraction_complements(self, inventory):
        assert inventory.capex_fraction() == pytest.approx(
            1.0 - inventory.opex_fraction()
        )

    def test_empty_inventory_fraction_raises(self):
        with pytest.raises(AccountingError):
            GHGInventory("x", 2020).opex_fraction()


class TestCategoryBreakdown:
    def test_shares_sum_to_one(self, inventory):
        table = inventory.category_breakdown(scope=Scope.SCOPE3_UPSTREAM)
        assert sum(table.column("share")) == pytest.approx(1.0)

    def test_sorted_descending(self, inventory):
        table = inventory.category_breakdown(scope=Scope.SCOPE3_UPSTREAM)
        shares = table.column("share")
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_empty_scope_raises(self, inventory):
        with pytest.raises(AccountingError):
            inventory.category_breakdown(scope=Scope.SCOPE3_DOWNSTREAM)


class TestReportSeries:
    def test_years_sorted(self, facebook):
        assert facebook.years == sorted(facebook.years)

    def test_unknown_year_raises(self, facebook):
        with pytest.raises(AccountingError):
            facebook.inventory(1999)

    def test_wrong_organization_rejected(self, inventory):
        with pytest.raises(AccountingError):
            ReportSeries("someone_else", [inventory])

    def test_duplicate_year_rejected(self, inventory):
        with pytest.raises(AccountingError):
            ReportSeries("acme", [inventory, inventory])

    def test_scope_table_has_all_years(self, facebook):
        table = facebook.scope_table()
        assert table.column("year") == facebook.years


class TestScopeTaxonomy:
    def test_as_record_joins_entries(self):
        taxonomy = ScopeTaxonomy(
            company_type="chip_manufacturer",
            scope1=("PFCs", "gases"),
            scope2=("fab energy",),
            scope3=("raw materials",),
        )
        record = taxonomy.as_record()
        assert record["scope1"] == "PFCs; gases"
        assert record["company_type"] == "chip_manufacturer"
