"""Batched uncertain sweeps are pinned to the scalar Monte Carlo path.

``repro.uncertainty`` evaluates (scenarios × draws) through one
batched kernel call; ``repro.analysis.uncertainty.monte_carlo`` over
the scalar simulators is the reference implementation. At matched
seeds the two must produce the *same floats* — same draws (the
per-scenario ``default_rng(seed)`` discipline), same metric
arithmetic, same quantiles. Exact equality, not approx.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.uncertainty import (
    Fixed,
    LogNormal,
    Mixture,
    Normal,
    Triangular,
    UncertaintyResult,
    Uniform,
    is_distribution,
    monte_carlo,
)
from repro.datacenter.fleet import simulate_fleet
from repro.datacenter.heterogeneity import (
    WorkloadClass,
    provision_heterogeneous,
    provision_homogeneous,
)
from repro.core.embodied import EmbodiedModel
from repro.data.grids import US_GRID
from repro.scenarios import ScenarioGrid, apply_overrides, facebook_like_fleet
from repro.units import JOULES_PER_KWH
from repro.scenarios.presets import example_service_mix
from repro.uncertainty import (
    build_draw_matrix,
    sweep_fleet_uncertain,
    sweep_provisioning_uncertain,
)

_DRAWS = 48
_SEED = 7


def _fleet_grid() -> ScenarioGrid:
    return ScenarioGrid(
        **{
            "annual_growth": [0.0, 0.3],
            "server.lifetime_years": [
                Triangular(2.0, 4.0, 6.0),
                Mixture.discrete({3.0: 0.5, 5.0: 0.5}),
            ],
            "utilization": [Normal(0.45, 0.08)],
            # Tight log-space sigma: Facility validates pue >= 1.0, and
            # log(1.2)/0.02 keeps a sub-1.0 draw ~9 sigma away.
            "facility.pue": [LogNormal.from_median(1.2, 0.02)],
        }
    )


#: Final-year metrics replicated with the exact arithmetic of
#: FleetBatchResult.final_year_table / the scalar report properties.
_FLEET_EXTRACTORS = {
    "servers": lambda final: float(final.servers),
    "energy_gwh": lambda final: final.energy.joules / JOULES_PER_KWH / 1e6,
    "opex_market_kt": lambda final: final.opex_market.grams / 1e6 / 1e3,
    "capex_kt": lambda final: final.capex.grams / 1e6 / 1e3,
    "capex_fraction_market": lambda final: final.capex_fraction_market,
}


def _scalar_fleet_reference(base, record, metric, draws, seed):
    """The reference: per-scenario monte_carlo over simulate_fleet."""
    fixed = {
        name: value for name, value in record.items() if not is_distribution(value)
    }
    spec = {
        name: value for name, value in record.items() if is_distribution(value)
    }
    extract = _FLEET_EXTRACTORS[metric]

    def model(point):
        params = apply_overrides(base, {**fixed, **point})
        return extract(simulate_fleet(params)[-1])

    return monte_carlo(model, spec, samples=draws, seed=seed)


class TestFleetEquivalence:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_fleet_uncertain(
            facebook_like_fleet(), _fleet_grid(), draws=_DRAWS, seed=_SEED
        )

    @pytest.mark.parametrize("metric", sorted(_FLEET_EXTRACTORS))
    def test_samples_bit_identical_to_scalar_monte_carlo(self, sweep, metric):
        base = facebook_like_fleet()
        for index, record in enumerate(_fleet_grid()):
            reference = _scalar_fleet_reference(
                base, record, metric, _DRAWS, _SEED
            )
            assert list(sweep.samples_for(metric)[index]) == list(
                reference.samples
            )

    def test_quantiles_pinned_to_scalar_summary(self, sweep):
        base = facebook_like_fleet()
        table = sweep.quantile_table()
        for index, record in enumerate(_fleet_grid()):
            reference = _scalar_fleet_reference(
                base, record, "capex_kt", _DRAWS, _SEED
            )
            assert table.column("capex_kt_mean")[index] == reference.mean
            for q, column in ((5.0, "capex_kt_p05"), (50.0, "capex_kt_p50"),
                              (95.0, "capex_kt_p95")):
                assert table.column(column)[index] == reference.percentile(q)

    def test_distribution_bridge_returns_reference_type(self, sweep):
        result = sweep.distribution("capex_kt", 0)
        assert isinstance(result, UncertaintyResult)
        assert result.samples.shape == (_DRAWS,)

    def test_seed_changes_draws(self):
        base = facebook_like_fleet()
        grid = _fleet_grid()
        a = sweep_fleet_uncertain(base, grid, draws=16, seed=0)
        b = sweep_fleet_uncertain(base, grid, draws=16, seed=1)
        assert not np.array_equal(
            a.samples_for("capex_kt"), b.samples_for("capex_kt")
        )


def _scaled(workloads, scale):
    return [
        WorkloadClass(workload.name, workload.demand_rps * scale)
        for workload in workloads
    ]


class TestProvisioningEquivalence:
    def test_samples_bit_identical_to_per_draw_scalar_loop(self):
        workloads, general, server_types = example_service_mix()
        targets = [0.45, Uniform(0.5, 0.8)]
        scales = [LogNormal.from_median(1.0, 0.3), 2.0]
        sweep = sweep_provisioning_uncertain(
            workloads,
            general,
            server_types,
            utilization_targets=targets,
            demand_scales=scales,
            draws=16,
            seed=3,
        )
        grid = US_GRID.intensity
        model = EmbodiedModel()
        records = [
            {"utilization_target": target, "demand_scale": scale}
            for target in targets
            for scale in scales
        ]
        matrix = build_draw_matrix(records, 16, 3)
        for index, record in enumerate(records):
            for draw in range(16):
                overrides = {**record, **matrix.overrides(index, draw)}
                target = float(overrides["utilization_target"])
                scale = float(overrides["demand_scale"])
                scaled = _scaled(workloads, scale)
                homo = provision_homogeneous(scaled, general, target)
                hetero = provision_heterogeneous(scaled, server_types, target)
                homo_grams = homo.total_per_year(grid, model).grams
                hetero_grams = hetero.total_per_year(grid, model).grams
                cell = {
                    "servers_homogeneous": float(homo.total_servers),
                    "servers_heterogeneous": float(hetero.total_servers),
                    "total_t_homogeneous": homo_grams / 1e6,
                    "total_t_heterogeneous": hetero_grams / 1e6,
                    "carbon_saving_fraction": 1.0 - hetero_grams / homo_grams,
                }
                for metric, expected in cell.items():
                    assert sweep.samples_for(metric)[index, draw] == expected
