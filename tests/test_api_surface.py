"""Public-API surface checks.

A downstream user sees the library through ``repro`` and its
subpackages; these tests pin that surface: everything advertised in
``__all__`` must be importable, and every public module/class/function
must carry a docstring — the documentation deliverable, enforced.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

_SUBPACKAGES = (
    "repro",
    "repro.core",
    "repro.data",
    "repro.mobile",
    "repro.fab",
    "repro.datacenter",
    "repro.analysis",
    "repro.report",
    "repro.experiments",
    "repro.scenarios",
    "repro.traces",
    "repro.uncertainty",
    "repro.exec",
    "repro.obs",
    "repro.portfolio",
    "repro.serve",
)


def _all_modules() -> list[str]:
    names = []
    for package_name in _SUBPACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("package_name", _SUBPACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), f"{package_name}.__all__ lists {name!r}"


def test_top_level_all_is_complete_for_key_types():
    for name in (
        "Carbon", "Energy", "Power", "CarbonIntensity", "Table",
        "GHGInventory", "ProductLCA", "EmbodiedModel", "MobilePhone",
        "pixel3", "FabModel", "VendorModel", "run_experiment", "run_all",
    ):
        assert name in repro.__all__


@pytest.mark.parametrize("module_name", _all_modules())
def test_public_callables_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-exports documented at their definition site
        if inspect.isclass(member) or inspect.isfunction(member):
            assert member.__doc__, f"{module_name}.{name} lacks a docstring"


def test_version_is_exposed():
    assert repro.__version__ == "1.1.0"


def test_version_has_one_source():
    # repro.__version__, the CLI --version flag, and setup.py must all
    # read the same value from repro/_version.py.
    import re
    from pathlib import Path

    from repro import _version

    assert repro.__version__ == _version.__version__
    setup_text = Path(repro.__file__).parents[2].joinpath("setup.py").read_text(
        encoding="utf-8"
    )
    assert "_version.py" in setup_text
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
