"""Equivalence: the batched trace evaluator vs the scalar schedulers.

The scalar schedulers in ``repro.datacenter.scheduler`` are the
reference implementation; ``repro.traces`` must match them *element
identically* — same placements, same carbon grams, same statistics,
bit for bit — across a property grid of deadlines, capacity limits,
and tie-break-inducing traces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datacenter.grid_sim import DiurnalGridModel
from repro.datacenter.scheduler import (
    BatchJob,
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from repro.errors import SimulationError
from repro.traces import (
    CARBON_AGNOSTIC,
    CARBON_AWARE,
    IntensityTrace,
    WorkloadTrace,
    diurnal_workload,
    evaluate_policies,
    evaluate_policies_scalar,
    prefix_sums,
    profile_catalog,
    schedule_batch,
    slack_bounded,
    training_workload,
)

_POLICIES = (CARBON_AGNOSTIC, CARBON_AWARE, slack_bounded(4), slack_bounded(12))


def _assert_tables_identical(batched, scalar):
    assert batched.column_names == scalar.column_names
    assert batched.num_rows == scalar.num_rows
    for name in batched.column_names:
        left, right = batched.column(name), scalar.column(name)
        assert left == right, f"column {name!r} diverges"


def _job_grid() -> list[BatchJob]:
    """Deadlines present and absent, equal-energy ties, varied arrivals."""
    return [
        BatchJob("tied_a", 3, 100.0, arrival_hour=0),
        BatchJob("tied_b", 3, 100.0, arrival_hour=0),  # same energy: name tie-break
        BatchJob("deadline_tight", 2, 150.0, arrival_hour=1, deadline_hour=5),
        BatchJob("deadline_loose", 4, 200.0, arrival_hour=0, deadline_hour=30),
        BatchJob("late_arrival", 2, 120.0, arrival_hour=12),
        BatchJob("open_ended", 6, 80.0, arrival_hour=2),
    ]


def _trace_grid() -> list[IntensityTrace]:
    """Flat (all ties), valley, duck curves, noisy — 36 h each."""
    flat = IntensityTrace("flat", np.full(36, 250.0))
    valley = np.full(36, 500.0)
    valley[10:16] = 50.0
    duck = DiurnalGridModel().trace(36, name="duck")
    noisy = IntensityTrace(
        "noisy",
        DiurnalGridModel(noise_g_per_kwh=40.0, seed=11).hourly_series(36),
    )
    return [flat, IntensityTrace("valley", valley), duck, noisy]


class TestKernelEquivalence:
    @pytest.mark.parametrize("capacity_kw", [260.0, 400.0, 1000.0])
    @pytest.mark.parametrize("carbon_aware", [False, True])
    def test_batch_rows_equal_scalar_schedules(self, capacity_kw, carbon_aware):
        jobs = _job_grid()
        traces = _trace_grid()
        matrix = np.vstack([trace.values for trace in traces])
        scalar_fn = (
            schedule_carbon_aware if carbon_aware else schedule_carbon_agnostic
        )
        try:
            batch = schedule_batch(
                jobs, matrix, capacity_kw, carbon_aware=carbon_aware
            )
        except SimulationError:
            # If the batch refuses, at least one scalar run must too.
            with pytest.raises(SimulationError):
                for row in matrix:
                    scalar_fn(jobs, row, capacity_kw)
            return
        for index in range(matrix.shape[0]):
            assert batch.result_for(index) == scalar_fn(
                jobs, matrix[index], capacity_kw
            )

    def test_shared_prefix_sums_change_nothing(self):
        jobs = _job_grid()
        matrix = np.vstack([trace.values for trace in _trace_grid()])
        csum = prefix_sums(matrix)
        with_shared = schedule_batch(jobs, matrix, 800.0, csum=csum)
        without = schedule_batch(jobs, matrix, 800.0)
        assert np.array_equal(with_shared.starts, without.starts)
        assert np.array_equal(with_shared.grams, without.grams)

    def test_single_row_matrix_equals_vector_input(self):
        jobs = _job_grid()
        trace = _trace_grid()[2]
        as_matrix = schedule_batch(jobs, trace.values[np.newaxis, :], 900.0)
        as_vector = schedule_batch(jobs, trace.values, 900.0)
        assert as_matrix.result_for(0) == as_vector.result_for(0)

    def test_infeasible_capacity_raises_like_scalar(self):
        jobs = [BatchJob("big", 2, 500.0)]
        matrix = np.full((3, 24), 100.0)
        with pytest.raises(SimulationError):
            schedule_batch(jobs, matrix, 400.0)
        with pytest.raises(SimulationError):
            schedule_carbon_aware(jobs, matrix[0], 400.0)

    def test_horizon_overflow_raises_like_scalar(self):
        jobs = [BatchJob("long", 30, 100.0)]
        matrix = np.full((2, 24), 100.0)
        with pytest.raises(SimulationError):
            schedule_batch(jobs, matrix, 400.0)
        with pytest.raises(SimulationError):
            schedule_carbon_agnostic(jobs, matrix[0], 400.0)


class TestEvaluatorEquivalence:
    @pytest.mark.parametrize("capacity_kw", [320.0, 650.0, 2000.0])
    def test_property_grid_tables_identical(self, capacity_kw):
        traces = _trace_grid()
        workloads = [
            WorkloadTrace("grid", tuple(_job_grid())),
            WorkloadTrace.from_records(
                "minimal", [{"name": "solo", "duration_hours": 1, "power_kw": 50.0}]
            ),
        ]
        try:
            batched = evaluate_policies(
                traces, workloads, _POLICIES, capacity_kw=capacity_kw
            )
        except SimulationError:
            with pytest.raises(SimulationError):
                evaluate_policies_scalar(
                    traces, workloads, _POLICIES, capacity_kw=capacity_kw
                )
            return
        scalar = evaluate_policies_scalar(
            traces, workloads, _POLICIES, capacity_kw=capacity_kw
        )
        _assert_tables_identical(batched, scalar)

    def test_bundled_catalog_tables_identical(self):
        catalog = profile_catalog(48)
        workloads = [diurnal_workload(1), training_workload(6, horizon_hours=36)]
        batched = evaluate_policies(catalog, workloads, capacity_kw=3000.0)
        scalar = evaluate_policies_scalar(catalog, workloads, capacity_kw=3000.0)
        _assert_tables_identical(batched, scalar)

    def test_mixed_horizons_group_correctly(self):
        # Traces of different lengths batch into separate groups but
        # must come back in input order with scalar-identical rows.
        long_trace = IntensityTrace(
            "long", DiurnalGridModel().hourly_series(72)
        )
        short_trace = IntensityTrace(
            "short", DiurnalGridModel(seed=1).hourly_series(36)
        )
        other_long = IntensityTrace(
            "other_long",
            DiurnalGridModel(noise_g_per_kwh=25.0, seed=2).hourly_series(72),
        )
        traces = [long_trace, short_trace, other_long]
        workloads = [WorkloadTrace("grid", tuple(_job_grid()))]
        batched = evaluate_policies(traces, workloads, capacity_kw=900.0)
        scalar = evaluate_policies_scalar(traces, workloads, capacity_kw=900.0)
        _assert_tables_identical(batched, scalar)
        assert batched.column("trace")[:3] == ["long", "long", "long"]

    def test_zero_carbon_trace_stays_equivalent(self):
        traces = [
            IntensityTrace("zero", np.zeros(36)),
            IntensityTrace("flat", np.full(36, 250.0)),
        ]
        workloads = [WorkloadTrace("grid", tuple(_job_grid()))]
        batched = evaluate_policies(traces, workloads, capacity_kw=900.0)
        scalar = evaluate_policies_scalar(traces, workloads, capacity_kw=900.0)
        _assert_tables_identical(batched, scalar)

    def test_agnostic_policy_rows_have_zero_savings(self):
        table = evaluate_policies(
            _trace_grid(),
            [WorkloadTrace("grid", tuple(_job_grid()))],
            [CARBON_AGNOSTIC],
            capacity_kw=900.0,
        )
        assert all(value == 0.0 for value in table.column("savings_fraction"))


@settings(max_examples=25, deadline=None)
@given(
    jobs=st.lists(
        st.builds(
            BatchJob,
            name=st.uuids().map(str),
            duration_hours=st.integers(min_value=1, max_value=6),
            power_kw=st.floats(min_value=10.0, max_value=150.0),
            arrival_hour=st.integers(min_value=0, max_value=12),
            deadline_hour=st.none(),
        ),
        min_size=1,
        max_size=6,
    ),
    seeds=st.lists(
        st.integers(min_value=0, max_value=2**31 - 1),
        min_size=1,
        max_size=5,
    ),
    slack=st.integers(min_value=0, max_value=24),
)
def test_random_scenarios_stay_element_identical(jobs, seeds, slack):
    traces = [
        IntensityTrace(
            f"t{index}",
            DiurnalGridModel(noise_g_per_kwh=30.0, seed=seed).hourly_series(48),
        )
        for index, seed in enumerate(seeds)
    ]
    workloads = [WorkloadTrace("random", tuple(jobs))]
    policies = (CARBON_AGNOSTIC, CARBON_AWARE, slack_bounded(slack))
    capacity = sum(job.power_kw for job in jobs) + 1.0
    batched = evaluate_policies(traces, workloads, policies, capacity_kw=capacity)
    scalar = evaluate_policies_scalar(
        traces, workloads, policies, capacity_kw=capacity
    )
    _assert_tables_identical(batched, scalar)
