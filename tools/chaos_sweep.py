#!/usr/bin/env python
"""Chaos smoke runner: a named sweep under a seeded fault storm.

Runs one registered sweep twice — once clean, once with
:meth:`repro.exec.FaultSpec.chaos` injecting first-attempt faults
(raise / worker crash / corrupt result) into a seeded subset of its
chunks while retries are armed — and exits non-zero unless the
recovered result is element-identical to the clean run. The storm is
exactly reproducible from ``--seed``, so a failure here is a
deterministic bug report, not a flake.

Usage::

    PYTHONPATH=src python tools/chaos_sweep.py
    PYTHONPATH=src python tools/chaos_sweep.py --sweep provisioning_mix \
        --seed 7 --rate 1.0 --jobs 2

``benchmarks/run_benchmarks.sh --quick`` runs this as part of its
smoke pass.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exec import FaultSpec, ShardPlan, install_faults
from repro.scenarios import SWEEPS, run_sweep
from repro.tabular import Table


def _tables_identical(left: Table, right: Table) -> bool:
    if left.column_names != right.column_names:
        return False
    if left.num_rows != right.num_rows:
        return False
    return all(
        left.column(name) == right.column(name) for name in left.column_names
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="run a named sweep under seeded fault injection and "
        "verify the recovered result is bit-identical to a clean run"
    )
    parser.add_argument(
        "--sweep",
        default="fleet_growth_lifetime",
        choices=sorted(SWEEPS),
        help="registered sweep to storm (default: fleet_growth_lifetime)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="chaos schedule seed (default: 0)"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=1.0,
        help="fraction of chunks sampled for a fault (default: 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the stormy run (default: 2)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="scenarios per chunk (default: about four chunks)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry budget for the stormy run (default: 2; chaos faults "
        "fire on attempt 1 only, so any budget >= 1 must recover)",
    )
    args = parser.parse_args(argv)

    clean = run_sweep(args.sweep)
    chunk_size = args.chunk_size or max(1, clean.num_rows // 4)
    plan = ShardPlan(num_scenarios=clean.num_rows, chunk_size=chunk_size)
    starts = [shard.start for shard in plan.shards()]
    spec = FaultSpec.chaos(starts, seed=args.seed, rate=args.rate)
    schedule = {rule.starts[0]: rule.kind for rule in spec.rules}
    print(
        f"chaos: sweep={args.sweep!r} chunks={len(starts)} "
        f"chunk_size={chunk_size} seed={args.seed} rate={args.rate} "
        f"-> injecting {schedule or 'nothing'}"
    )
    if not spec:
        print("chaos: WARNING — the storm sampled zero chunks; raise --rate")

    began = time.perf_counter()
    with install_faults(spec):
        stormy = run_sweep(
            args.sweep,
            jobs=args.jobs,
            chunk_size=chunk_size,
            retries=args.retries,
        )
    elapsed = time.perf_counter() - began
    if not _tables_identical(stormy, clean):
        print(
            "chaos: MISMATCH — the recovered sweep differs from the clean "
            "run; fault recovery corrupted results",
            file=sys.stderr,
        )
        return 1
    print(
        f"chaos: OK — {clean.num_rows} rows bit-identical after "
        f"{len(schedule)} injected fault(s), recovered in {elapsed:.2f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
