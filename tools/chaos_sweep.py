#!/usr/bin/env python
"""Chaos smoke runner: a named sweep under a seeded fault storm.

Runs one registered sweep twice — once clean, once with
:meth:`repro.exec.FaultSpec.chaos` injecting first-attempt faults
(raise / worker crash / corrupt result) into a seeded subset of its
chunks while retries are armed — and exits non-zero unless the
recovered result is element-identical to the clean run. The storm is
exactly reproducible from ``--seed``, so a failure here is a
deterministic bug report, not a flake.

With ``--trace-out PATH`` the stormy run records a JSONL trace
(:mod:`repro.obs`), and the script additionally verifies the trace
against the fault schedule itself: every injected rule must have left
a first-attempt ``attempt`` event with the outcome
:func:`repro.exec.predict_outcomes` maps it to, and every chunk must
have ended with an ``ok`` attempt.

Usage::

    PYTHONPATH=src python tools/chaos_sweep.py
    PYTHONPATH=src python tools/chaos_sweep.py --sweep provisioning_mix \
        --seed 7 --rate 1.0 --jobs 2 --trace-out /tmp/chaos.jsonl

``benchmarks/run_benchmarks.sh --quick`` runs this (traced) as part of
its smoke pass.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exec import FaultSpec, ShardPlan, install_faults, predict_outcomes
from repro.obs import TraceRecorder, install_recorder
from repro.scenarios import SWEEPS, run_sweep
from repro.tabular import Table


def _verify_trace(
    events: "list[dict]",
    spec: FaultSpec,
    starts: "list[int]",
    retries: int,
    jobs: int,
) -> "list[str]":
    """Check recorded attempt events against the fault schedule.

    Returns human-readable problems (empty = trace matches). Two
    properties are enforced: every injected rule left a first-attempt
    event with its predicted outcome, and every chunk's last attempt
    was ``ok`` (the storm fires on attempt 1 only, so an armed retry
    budget must recover everything). One documented slack: a pooled
    worker crash breaks the whole pool, so chunks in-flight alongside
    the crash may have their first attempt co-charged as ``crash``
    instead of their own predicted outcome.
    """
    pooled = jobs > 1
    predicted = predict_outcomes(
        spec,
        starts,
        max_attempts=retries + 1,
        pooled=pooled,
        timeout_armed=False,
    )
    crash_in_pool = pooled and any(
        rule.kind == "crash" for rule in spec.rules
    )
    attempts: dict[int, list[tuple[int, str]]] = {}
    for event in events:
        if event.get("kind") == "attempt":
            attempts.setdefault(event["stream"], []).append(
                (event["attempt"], event["outcome"])
            )
    problems = []
    for rule in spec.rules:
        start = rule.starts[0]
        want = predicted[start][0]
        if want == "ok":
            continue
        accept = {want, "crash"} if crash_in_pool else {want}
        seen = attempts.get(start, [])
        if not any(a == 1 and o in accept for a, o in seen):
            problems.append(
                f"chunk {start}: no first-attempt {want!r} event "
                f"(recorded {seen})"
            )
    for start in starts:
        seen = attempts.get(start, [])
        if not seen or seen[-1][1] != "ok":
            problems.append(
                f"chunk {start}: last attempt is not 'ok' (recorded {seen})"
            )
    return problems


def _tables_identical(left: Table, right: Table) -> bool:
    if left.column_names != right.column_names:
        return False
    if left.num_rows != right.num_rows:
        return False
    return all(
        left.column(name) == right.column(name) for name in left.column_names
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="run a named sweep under seeded fault injection and "
        "verify the recovered result is bit-identical to a clean run"
    )
    parser.add_argument(
        "--sweep",
        default="fleet_growth_lifetime",
        choices=sorted(SWEEPS),
        help="registered sweep to storm (default: fleet_growth_lifetime)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="chaos schedule seed (default: 0)"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=1.0,
        help="fraction of chunks sampled for a fault (default: 1.0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the stormy run (default: 2)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="sharded-axis entries per chunk (default: about four chunks)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry budget for the stormy run (default: 2; chaos faults "
        "fire on attempt 1 only, so any budget >= 1 must recover)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record the stormy run's JSONL trace at PATH and verify "
        "the emitted attempt events against the injected schedule",
    )
    args = parser.parse_args(argv)

    clean = run_sweep(args.sweep)
    # Sweeps that shard a non-scenario axis (the portfolio sweep chunks
    # its device catalog) report it via SweepSpec.axis_size; the fault
    # schedule must target that axis's chunk starts, not the row count.
    size_of_axis = SWEEPS[args.sweep].axis_size
    axis = size_of_axis() if size_of_axis is not None else clean.num_rows
    chunk_size = args.chunk_size or max(1, axis // 4)
    plan = ShardPlan(num_scenarios=axis, chunk_size=chunk_size)
    starts = [shard.start for shard in plan.shards()]
    spec = FaultSpec.chaos(starts, seed=args.seed, rate=args.rate)
    schedule = {rule.starts[0]: rule.kind for rule in spec.rules}
    print(
        f"chaos: sweep={args.sweep!r} chunks={len(starts)} "
        f"chunk_size={chunk_size} seed={args.seed} rate={args.rate} "
        f"-> injecting {schedule or 'nothing'}"
    )
    if not spec:
        print("chaos: WARNING — the storm sampled zero chunks; raise --rate")

    recorder = TraceRecorder(args.trace_out) if args.trace_out else None
    began = time.perf_counter()
    with install_recorder(recorder), install_faults(spec):
        stormy = run_sweep(
            args.sweep,
            jobs=args.jobs,
            chunk_size=chunk_size,
            retries=args.retries,
        )
    elapsed = time.perf_counter() - began
    if recorder is not None:
        recorder.close()
    if not _tables_identical(stormy, clean):
        print(
            "chaos: MISMATCH — the recovered sweep differs from the clean "
            "run; fault recovery corrupted results",
            file=sys.stderr,
        )
        return 1
    if recorder is not None:
        problems = _verify_trace(
            recorder.events, spec, starts, args.retries, args.jobs
        )
        if problems:
            print(
                "chaos: TRACE MISMATCH — the recorded events disagree with "
                "the injected schedule:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(
            f"chaos: trace OK — {len(recorder.events)} events at "
            f"{args.trace_out} match the injected schedule"
        )
    print(
        f"chaos: OK — {clean.num_rows} rows bit-identical after "
        f"{len(schedule)} injected fault(s), recovered in {elapsed:.2f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
