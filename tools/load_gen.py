#!/usr/bin/env python
"""Load generator for the sweep service: N concurrent clients, one box.

Boots an in-process :class:`repro.serve.SweepService` on an ephemeral
port, fires ``--clients`` concurrent HTTP clients at it (each client
one keep-alive connection, one request), and reports throughput and
latency percentiles. ``--no-coalesce`` runs the same offered load
against a ``coalesce=False`` service — the baseline the micro-batcher
is judged against — so one invocation of each mode measures exactly
what coalescing buys on this machine.

Ten thousand logical clients do not need ten thousand simultaneously
open sockets: ``--max-open`` bounds concurrency with a semaphore
(default 5000) and the soft ``RLIMIT_NOFILE`` is raised toward the
hard limit so the default survives stock containers. The queue is
sized to the client count by default, so a clean run sheds nothing;
pass ``--max-queue`` to study overload behavior instead (shed 429s
are counted, never treated as errors).

Usage::

    PYTHONPATH=src python tools/load_gen.py --clients 1000
    PYTHONPATH=src python tools/load_gen.py --clients 200 --no-coalesce
    PYTHONPATH=src python tools/load_gen.py --clients 10000 --json

``benchmarks/test_bench_serve.py`` imports :func:`run_load` for the
coalescing throughput gate; ``benchmarks/run_benchmarks.sh --quick``
runs a small smoke of both modes.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Any

from repro.serve import ServeConfig, ServiceClient, SweepService

#: Distinct override values cycled across clients so coalesced batches
#: do real per-row work (identical rows would flatter the kernel).
_VALUE_CYCLE = 16


def raise_nofile_limit(target: int) -> int:
    """Raise the soft ``RLIMIT_NOFILE`` toward ``target``; return it.

    Never exceeds the hard limit and never lowers the current soft
    limit — on platforms without :mod:`resource` (or without the
    privilege to change it) the current limit is simply reported.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return target
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    wanted = min(max(soft, target), hard if hard > 0 else target)
    if wanted > soft:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (wanted, hard))
            soft = wanted
        except (ValueError, OSError):  # pragma: no cover - privilege
            pass
    return soft


def _payload(kind: str, index: int) -> "dict[str, Any]":
    """The request body for logical client ``index``.

    Every kind keeps one batch-group key across all clients (that is
    the scenario coalescing is built for) while cycling the override
    *values* so rows differ.
    """
    step = index % _VALUE_CYCLE
    if kind == "portfolio":
        return {"overrides": {"lifetime_years": 2.0 + step * 0.25}}
    if kind == "scenario":
        return {"overrides": {"facility.pue": 1.05 + step * 0.025}}
    if kind == "sweep":
        return {"name": "fleet_growth_lifetime"}
    raise ValueError(f"unknown request kind: {kind!r}")


def _percentile(ordered: "list[float]", q: float) -> float:
    """Linear-interpolation percentile of an ascending-sorted list."""
    if not ordered:
        return float("nan")
    rank = (len(ordered) - 1) * q
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


async def _client_task(
    host: str,
    port: int,
    kind: str,
    index: int,
    per_client: int,
    gate: asyncio.Semaphore,
    deadline_s: "float | None",
) -> "list[tuple[int, float]]":
    """One logical client: one keep-alive connection, N sequential POSTs."""
    async with gate:
        client = ServiceClient(host, port)
        outcomes = []
        try:
            for round_index in range(per_client):
                body = _payload(kind, index + round_index)
                if deadline_s is not None:
                    body["deadline_s"] = deadline_s
                start = time.perf_counter()
                status, _ = await client.request("POST", f"/v1/{kind}", body)
                outcomes.append((status, time.perf_counter() - start))
            return outcomes
        finally:
            await client.close()


async def _run(
    *,
    clients: int,
    kind: str,
    coalesce: bool,
    per_client: int,
    max_open: int,
    batch_window_s: float,
    max_queue: "int | None",
    deadline_s: "float | None",
) -> "dict[str, Any]":
    config = ServeConfig(
        coalesce=coalesce,
        batch_window_s=batch_window_s,
        max_queue=max_queue if max_queue is not None else max(clients, 1),
    )
    service = SweepService(config)
    await service.start()
    gate = asyncio.Semaphore(max_open)
    try:
        wall_start = time.perf_counter()
        per_task = await asyncio.gather(
            *(
                _client_task(
                    config.host,
                    service.port,
                    kind,
                    index,
                    per_client,
                    gate,
                    deadline_s,
                )
                for index in range(clients)
            )
        )
        elapsed = time.perf_counter() - wall_start
        probe = ServiceClient(config.host, service.port)
        try:
            _, metrics = await probe.metrics()
        finally:
            await probe.close()
    finally:
        abandoned = await service.drain()

    results = [outcome for outcomes in per_task for outcome in outcomes]
    total = clients * per_client
    latencies = sorted(latency for status, latency in results if status == 200)
    statuses: dict[int, int] = {}
    for status, _ in results:
        statuses[status] = statuses.get(status, 0) + 1
    counters = metrics["metrics"]["counters"]
    width = metrics["metrics"]["histograms"].get(
        "serve.coalesce_width", {"count": 0}
    )
    return {
        "kind": kind,
        "coalesce": coalesce,
        "clients": clients,
        "per_client": per_client,
        "requests": total,
        "ok": statuses.get(200, 0),
        "shed": statuses.get(429, 0),
        "errors": sum(
            count
            for status, count in statuses.items()
            if status not in (200, 429)
        ),
        "abandoned": abandoned,
        "elapsed_s": elapsed,
        "req_per_s": total / elapsed if elapsed > 0 else float("inf"),
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
        "batches": int(counters.get("serve.batches", 0)),
        "max_batch_width": int(width.get("max", 1)) if width["count"] else 1,
    }


def run_load(
    *,
    clients: int,
    kind: str = "portfolio",
    coalesce: bool = True,
    per_client: int = 1,
    max_open: int = 5000,
    batch_window_s: float = 0.005,
    max_queue: "int | None" = None,
    deadline_s: "float | None" = None,
) -> "dict[str, Any]":
    """Run one load session against a fresh in-process service.

    Returns the report dict ``main`` prints — throughput, latency
    percentiles, status counts, and the coalescing evidence
    (batch count and widest batch).
    """
    raise_nofile_limit(max(max_open * 2, 1024))
    return asyncio.run(
        _run(
            clients=clients,
            kind=kind,
            coalesce=coalesce,
            per_client=per_client,
            max_open=max_open,
            batch_window_s=batch_window_s,
            max_queue=max_queue,
            deadline_s=deadline_s,
        )
    )


def _render(report: "dict[str, Any]") -> str:
    mode = "coalesced" if report["coalesce"] else "no-coalesce"
    lines = [
        f"load_gen: {report['clients']} clients x {report['per_client']} "
        f"{report['kind']} request(s) ({mode})",
        (
            f"  responses: {report['ok']} ok, {report['shed']} shed (429), "
            f"{report['errors']} errors, {report['abandoned']} abandoned"
        ),
        (
            f"  throughput: {report['req_per_s']:.0f} req/s "
            f"({report['elapsed_s']:.3f}s wall)"
        ),
        (
            f"  latency: p50 {report['p50_ms']:.1f} ms, "
            f"p99 {report['p99_ms']:.1f} ms"
        ),
        (
            f"  batching: {report['batches']} kernel call(s), "
            f"widest {report['max_batch_width']}"
        ),
    ]
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fire N concurrent clients at an in-process sweep service."
    )
    parser.add_argument(
        "--clients", type=int, default=1000,
        help="logical clients, one request each (default 1000)",
    )
    parser.add_argument(
        "--kind", choices=("portfolio", "scenario", "sweep"),
        default="portfolio",
        help="request kind every client sends (default portfolio)",
    )
    parser.add_argument(
        "--no-coalesce", action="store_true",
        help="serve with coalescing disabled (the baseline mode)",
    )
    parser.add_argument(
        "--per-client", type=int, default=1,
        help="sequential keep-alive requests per client (default 1)",
    )
    parser.add_argument(
        "--max-open", type=int, default=5000,
        help="max simultaneously open client sockets (default 5000)",
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=5.0,
        help="service coalescing window in milliseconds (default 5)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None,
        help="admission queue bound (default: the client count — no shedding)",
    )
    parser.add_argument(
        "--deadline-s", type=float, default=None,
        help="per-request deadline forwarded to the service",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    if args.clients <= 0:
        parser.error("--clients must be positive")
    if args.per_client <= 0:
        parser.error("--per-client must be positive")
    if args.max_open <= 0:
        parser.error("--max-open must be positive")
    report = run_load(
        clients=args.clients,
        kind=args.kind,
        coalesce=not args.no_coalesce,
        per_client=args.per_client,
        max_open=args.max_open,
        batch_window_s=args.batch_window_ms / 1e3,
        max_queue=args.max_queue,
        deadline_s=args.deadline_s,
    )
    print(json.dumps(report, indent=2) if args.json else _render(report))
    return 0 if report["errors"] == 0 and report["abandoned"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
