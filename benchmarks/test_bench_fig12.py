"""Benchmark: regenerate Figure 12 (Facebook 2019 Scope 3 split)."""

from repro.experiments.fig12_fb_scope3 import run


def test_bench_fig12(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    shares = {
        row["category"]: row["share"] for row in result.table("scope3_categories")
    }
    assert abs(shares["capital_goods"] - 0.48) < 1e-9
    assert abs(shares["purchased_goods"] - 0.39) < 1e-9
