"""Benchmark: regenerate Figure 7 (generational trends)."""

from repro.experiments.fig07_generational_trends import run


def test_bench_fig07(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    iphone = result.table("iphone")
    fractions = iphone.column("manufacturing_fraction")
    assert fractions[0] == 0.40 and fractions[-1] == 0.75
    ipad_totals = result.table("ipad").column("total_kg")
    assert ipad_totals[-1] < ipad_totals[0]
