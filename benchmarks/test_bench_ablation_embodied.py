"""Ablation benchmark: bottom-up embodied model vs reported LCAs (ext02)."""

from repro.experiments.ext02_embodied_validation import run


def test_bench_ablation_embodied(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    ratios = result.table("validation").column("ratio")
    assert all(ratio <= 1.0 for ratio in ratios)
