"""Benchmark: regenerate Figure 8 (performance/carbon Pareto)."""

from repro.experiments.fig08_pareto import run


def test_bench_fig08(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    frontier_2019 = result.table("frontiers").where(
        lambda r: r["frontier"] == "2019"
    )
    assert "iphone_11_pro" in frontier_2019.column("product")
    assert max(frontier_2019.column("throughput_ips")) == 75.0
