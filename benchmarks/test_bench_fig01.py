"""Benchmark: regenerate Figure 1 (ICT energy projections).

Prints/validates the paper's series: ICT at ~5% of global demand in
2015, 7% (optimistic) and 20% (expected) by 2030.
"""

from repro.experiments.fig01_ict_projections import run


def test_bench_fig01(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    expected_2030 = result.table("expected").where(
        lambda r: r["year"] == 2030
    ).row(0)
    assert expected_2030["ict_share"] > 0.18
    optimistic_2030 = result.table("optimistic").where(
        lambda r: r["year"] == 2030
    ).row(0)
    assert 0.06 < optimistic_2030["ict_share"] < 0.08
