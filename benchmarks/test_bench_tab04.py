"""Benchmark: regenerate Table IV (Mac Pro configurations)."""

from repro.experiments.tab04_macpro import run


def test_bench_tab04(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    reported = result.table("reported")
    kgs = reported.column("manufacturing_kg")
    assert abs(kgs[1] / kgs[0] - 1900.0 / 700.0) < 1e-9
