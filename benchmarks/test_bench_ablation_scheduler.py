"""Ablation benchmark: carbon-aware scheduling savings (ext01).

Quantifies the Section VI claim that shifting deferrable work into
clean-grid windows saves material carbon, against the carbon-agnostic
baseline on the same jobs and grid.
"""

from repro.datacenter.grid_sim import DiurnalGridModel
from repro.datacenter.scheduler import (
    schedule_carbon_agnostic,
    schedule_carbon_aware,
)
from repro.experiments.ext01_scheduler import example_jobs, run


def test_bench_ablation_scheduler(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass


def test_bench_scheduler_scaling(benchmark):
    """Aware scheduler over a 2-week horizon with a 60-job batch."""
    grid = DiurnalGridModel(noise_g_per_kwh=25.0, seed=11).hourly_series(336)
    jobs = []
    for index in range(10):
        for template in example_jobs():
            jobs.append(
                type(template)(
                    name=f"{template.name}_{index}",
                    duration_hours=template.duration_hours,
                    power_kw=template.power_kw,
                    arrival_hour=template.arrival_hour + 24 * (index % 7),
                    deadline_hour=(
                        None
                        if template.deadline_hour is None
                        else template.deadline_hour + 24 * (index % 7) + 48
                    ),
                )
            )
    capacity = 3000.0
    aware = benchmark(lambda: schedule_carbon_aware(jobs, grid, capacity))
    agnostic = schedule_carbon_agnostic(jobs, grid, capacity)
    assert aware.total_carbon.grams < agnostic.total_carbon.grams
