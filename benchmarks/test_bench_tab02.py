"""Benchmark: regenerate Table II (energy-source intensities)."""

from repro.experiments.tab02_energy_sources import run


def test_bench_tab02(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    rows = {row["source"]: row["g_per_kwh"] for row in result.table("sources")}
    assert rows["coal"] == 820.0 and rows["wind"] == 11.0
