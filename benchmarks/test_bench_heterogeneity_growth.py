"""Benchmarks: heterogeneity (ext08) and AI-growth race (ext09)."""

from repro.experiments.ext08_heterogeneity import run as run_heterogeneity
from repro.experiments.ext09_ai_growth import run as run_growth


def test_bench_heterogeneity(benchmark):
    result = benchmark(run_heterogeneity)
    assert result.all_checks_pass
    table = result.table("comparison")
    totals = {row["plan"]: row["total_t_per_year"] for row in table}
    assert totals["heterogeneous"] < totals["homogeneous"]


def test_bench_ai_growth(benchmark):
    result = benchmark(run_growth)
    assert result.all_checks_pass
    clean = result.table("wind_grid")
    assert all(share > 0.5 for share in clean.column("embodied_share"))
