"""Ablation benchmark: reduction-lever ranking (ext05) and lifetime
economics (ext06)."""

from repro.analysis.lifetime import lifetime_sweep
from repro.data.devices import device_by_name
from repro.data.grids import US_GRID
from repro.experiments.ext05_levers import run as run_levers
from repro.experiments.ext06_lifetime import run as run_lifetime
from repro.units import Energy


def test_bench_levers(benchmark):
    result = benchmark(run_levers)
    assert result.all_checks_pass
    dirty = result.table("dirty_grid")
    assert dirty.row(0)["lever"] == "renewable_energy"


def test_bench_lifetime(benchmark):
    # The deterministic lifetime economics this bench has always
    # gated. ext06's run() additionally propagates 2000-draw CIs since
    # PR 4; the bigger experiment is timed separately below so a
    # deliberate workload growth cannot mask a model regression.
    iphone = device_by_name("iphone_11")
    use_grams_per_year = iphone.use_carbon.grams / iphone.lifetime_years
    annual_energy = Energy.kwh(
        use_grams_per_year / US_GRID.intensity.grams_per_kwh
    )
    sweep = benchmark(
        lambda: lifetime_sweep(
            iphone.capex_carbon, annual_energy, US_GRID.intensity
        )
    )
    assert sweep.column("annualized_kg")[-1] < sweep.column("annualized_kg")[0]


def test_bench_lifetime_experiment_with_uncertainty(benchmark):
    """Full ext06 run(): lifetime economics + Monte Carlo CI columns."""
    result = benchmark(run_lifetime)
    assert result.all_checks_pass
    sweep = result.table("lifetime_sweep")
    assert sweep.column("annualized_kg")[-1] < sweep.column("annualized_kg")[0]
