"""Ablation benchmark: reduction-lever ranking (ext05) and lifetime
economics (ext06)."""

from repro.experiments.ext05_levers import run as run_levers
from repro.experiments.ext06_lifetime import run as run_lifetime


def test_bench_levers(benchmark):
    result = benchmark(run_levers)
    assert result.all_checks_pass
    dirty = result.table("dirty_grid")
    assert dirty.row(0)["lever"] == "renewable_energy"


def test_bench_lifetime(benchmark):
    result = benchmark(run_lifetime)
    assert result.all_checks_pass
    sweep = result.table("lifetime_sweep")
    assert sweep.column("annualized_kg")[-1] < sweep.column("annualized_kg")[0]
