"""Benchmark: regenerate Figure 9 (inference latency/energy grid)."""

from repro.experiments.fig09_inference import run


def test_bench_fig09(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    ratio = result.check("cpu_latency_inception_over_mobilenet_v2")
    assert abs(ratio.measured - 17.0) < 0.5
    energy_ratio = result.check("mobilenet_v3_cpu_over_dsp_energy")
    assert abs(energy_ratio.measured - 2.0) < 0.05
