"""Benchmark: regenerate Figure 13 (Intel/AMD vs energy source)."""

from repro.experiments.fig13_renewable_shift import run


def test_bench_fig13(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    intel_wind = result.table("intel").where(
        lambda r: r["source"] == "wind"
    ).row(0)
    assert intel_wind["non_use_share"] > 0.80
    amd_baseline = result.table("amd").where(
        lambda r: r["source"] == "america_average"
    ).row(0)
    assert abs(amd_baseline["use_share"] - 0.45) < 0.01
