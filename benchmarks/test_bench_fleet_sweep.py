"""Benchmark: 1000-scenario fleet sweep, batched kernel vs scalar loop.

The scenario engine's reason to exist: the same growth × lifetime ×
PUE × utilization grid through ``simulate_fleet_batch`` (one
struct-of-arrays kernel call) and through a per-scenario
``simulate_fleet`` loop. The acceptance gate is >=10x between the two
recorded means.
"""

from repro.datacenter.fleet import simulate_fleet, simulate_fleet_batch
from repro.scenarios import (
    ScenarioGrid,
    facebook_like_fleet,
    fleet_scenario_parameters,
)

_GRID = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.75],
        "server.lifetime_years": [2.0, 3.0, 4.0, 5.0, 6.0],
        "facility.pue": [1.07, 1.1, 1.15, 1.25, 1.4],
        "utilization": [0.25, 0.45, 0.65, 0.85],
    }
)


def _scenarios():
    return fleet_scenario_parameters(facebook_like_fleet(), _GRID)


def test_bench_fleet_sweep_batch_1k(benchmark):
    scenarios = _scenarios()
    assert len(scenarios) == 1000
    result = benchmark(lambda: simulate_fleet_batch(scenarios))
    assert result.num_scenarios == 1000
    # Spot-check the kernel against the scalar reference.
    assert result.reports(137) == simulate_fleet(scenarios[137])


def test_bench_fleet_sweep_scalar_1k(benchmark):
    scenarios = _scenarios()
    reports = benchmark(
        lambda: [simulate_fleet(params) for params in scenarios]
    )
    assert len(reports) == 1000
