"""Benchmarks: bottom-up vendor footprint (ext07) and the fab model."""

from repro.data.grids import TAIWAN_GRID
from repro.experiments.ext07_vendor import run as run_vendor
from repro.fab.fabs import FabModel
from repro.fab.process import node_by_name


def test_bench_vendor_bottom_up(benchmark):
    result = benchmark(run_vendor)
    assert result.all_checks_pass
    breakdown = {
        row["group"]: row["fraction"] for row in result.table("breakdown")
    }
    assert abs(breakdown["manufacturing"] - 0.74) < 0.06


def test_bench_fab_renewable_sweep(benchmark):
    """Sweep a 3nm gigafab's renewable share 0..100% and file each."""
    fab = FabModel(
        name="gigafab_3nm",
        node=node_by_name("3nm"),
        wafer_starts_per_year=1.0e6,
        grid=TAIWAN_GRID.intensity,
    )

    def sweep():
        return [
            fab.with_renewable_share(share / 10.0).inventory(2025)
            for share in range(0, 11)
        ]

    inventories = benchmark(sweep)
    market = [
        inv.scope_total(type(inv.entries[0].scope).SCOPE2_MARKET).grams
        for inv in inventories
    ]
    scope1 = [inv.scope_total(type(inv.entries[0].scope).SCOPE1).grams
              for inv in inventories]
    # Market Scope 2 falls to zero; Scope 1 gases stay flat.
    assert market[-1] == 0.0 and market[0] > 0.0
    assert scope1[0] == scope1[-1]
