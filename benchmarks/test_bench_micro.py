"""Micro-benchmarks for the library's hot primitives.

These gate the substrates a downstream analysis would hammer: table
group-bys over large corpora, Pareto extraction over many points, and
the full experiment registry end to end.
"""

import random

from repro.core.pareto import ParetoPoint, pareto_frontier
from repro.experiments.registry import run_all
from repro.tabular import Table


def _big_table(rows: int = 20_000) -> Table:
    rng = random.Random(7)
    return Table.from_records(
        [
            {
                "vendor": rng.choice(["apple", "google", "huawei", "microsoft"]),
                "year": rng.randint(2008, 2020),
                "kg": rng.uniform(10.0, 1500.0),
            }
            for _ in range(rows)
        ]
    )


def test_bench_table_aggregate(benchmark):
    table = _big_table()
    result = benchmark(
        lambda: table.aggregate(
            by=["vendor", "year"], total=("kg", sum), count=("kg", len)
        )
    )
    assert result.num_rows <= 4 * 13


def test_bench_table_sort_and_filter(benchmark):
    table = _big_table()

    def pipeline() -> Table:
        return (
            table.where("year", ">=", 2015)
            .sort_by("kg", reverse=True)
            .head(100)
        )

    result = benchmark(pipeline)
    assert result.num_rows == 100


def test_bench_table_filter_callable(benchmark):
    """The original row-at-a-time predicate API, tracked separately so
    the legacy path's cost stays visible next to the expression path."""
    table = _big_table()

    def pipeline() -> Table:
        return (
            table.where(lambda row: row["year"] >= 2015)
            .sort_by("kg", reverse=True)
            .head(100)
        )

    result = benchmark(pipeline)
    assert result.num_rows == 100


def test_bench_pareto_large(benchmark):
    rng = random.Random(13)
    points = [
        ParetoPoint(
            label=f"p{i}",
            performance=rng.uniform(0.0, 100.0),
            cost=rng.uniform(1.0, 100.0),
        )
        for i in range(2_000)
    ]
    frontier = benchmark(lambda: pareto_frontier(points))
    assert frontier


def test_bench_full_evaluation(benchmark):
    """The entire paper evaluation (every registered experiment)."""
    results = benchmark(run_all)
    assert len(results) >= 22
    assert all(result.all_checks_pass for result in results.values())
