#!/usr/bin/env python
"""Diff two pytest-benchmark snapshots and fail on mean-time regressions.

Usage::

    python benchmarks/compare_benchmarks.py BASELINE.json CANDIDATE.json \
        [--threshold 2.0]

Compares every benchmark present in *both* snapshots and exits
non-zero when any shared benchmark's mean time regressed by more than
``threshold``x. Benchmarks only present on one side are listed but
never fail the guard (new benchmarks must be allowed to land).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    with path.open() as handle:
        snapshot = json.load(handle)
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in snapshot.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="older BENCH_*.json")
    parser.add_argument("candidate", type=Path, help="newer BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when candidate mean exceeds baseline mean by this "
        "factor (default: 2.0)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0.0:
        parser.error("threshold must be positive")

    baseline = load_means(args.baseline)
    candidate = load_means(args.candidate)
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        print("no shared benchmarks between the two snapshots", file=sys.stderr)
        return 2

    regressions: list[str] = []
    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  baseline(s)   candidate(s)  ratio")
    for name in shared:
        ratio = candidate[name] / baseline[name]
        flag = ""
        if ratio > args.threshold:
            flag = f"  REGRESSION (> {args.threshold:g}x)"
            regressions.append(name)
        elif ratio < 1.0 / args.threshold:
            flag = "  improved"
        print(
            f"{name:<{width}}  {baseline[name]:>11.6f}  {candidate[name]:>12.6f}"
            f"  {ratio:>5.2f}{flag}"
        )

    only_baseline = sorted(set(baseline) - set(candidate))
    only_candidate = sorted(set(candidate) - set(baseline))
    if only_baseline:
        print(f"\ndropped since baseline: {', '.join(only_baseline)}")
    if only_candidate:
        print(f"new in candidate: {', '.join(only_candidate)}")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:g}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nno regression beyond {args.threshold:g}x across "
          f"{len(shared)} shared benchmarks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
