"""Benchmark: regenerate Figure 14 (TSMC wafer renewable sweep)."""

from repro.experiments.fig14_tsmc_wafer import run


def test_bench_fig14(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    sweep = result.table("sweep")
    assert sweep.num_rows == 7
    final = sweep.where(lambda r: r["factor"] == 64.0).row(0)
    assert abs(1.0 / final["total"] - 2.7) < 0.15
