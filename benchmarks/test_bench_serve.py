"""Benchmark: the sweep service under concurrent client load.

Drives :func:`tools.load_gen.run_load` — 1000 concurrent keep-alive
clients, ten portfolio requests each (10k requests total) — against an
in-process :class:`repro.serve.SweepService` twice: once with
micro-batch coalescing on (the production configuration) and once with
``coalesce=False`` (every request its own kernel call — the baseline
coalescing is judged against). Throughput and p50/p99 latency land in
the benchmark JSON via ``extra_info``.

The acceptance gate lives in
``test_gate_serve_coalescing_throughput``: coalescing must deliver
>=5x the baseline's requests/sec on the same offered load. The gate
reuses the measurements the two benchmark bodies just made (pytest
runs this file top-down) and re-measures only if a first ratio lands
under the bar — one retry, because a single-core CI box under noisy
neighbors deserves a second opinion before the build goes red.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from load_gen import run_load  # noqa: E402

_CLIENTS = 1000
_PER_CLIENT = 10
_TOTAL = _CLIENTS * _PER_CLIENT

#: Mode -> report of the most recent run, shared with the gate so the
#: ratio check does not pay for a third and fourth load session.
_REPORTS: "dict[bool, dict]" = {}


def _session(coalesce: bool) -> dict:
    report = run_load(
        clients=_CLIENTS,
        per_client=_PER_CLIENT,
        kind="portfolio",
        coalesce=coalesce,
    )
    assert report["ok"] == _TOTAL, report
    assert report["errors"] == 0 and report["abandoned"] == 0, report
    _REPORTS[coalesce] = report
    return report


def _annotate(benchmark, report: dict) -> None:
    benchmark.extra_info["req_per_s"] = round(report["req_per_s"], 1)
    benchmark.extra_info["p50_ms"] = round(report["p50_ms"], 2)
    benchmark.extra_info["p99_ms"] = round(report["p99_ms"], 2)
    benchmark.extra_info["batches"] = report["batches"]
    benchmark.extra_info["max_batch_width"] = report["max_batch_width"]


def test_bench_serve_coalesced(benchmark):
    """10k requests from 1k concurrent clients, coalescing on."""
    report = benchmark.pedantic(
        lambda: _session(coalesce=True), rounds=1, iterations=1
    )
    # Coalescing evidence: far fewer kernel calls than requests, and
    # batches actually filled out (the window caught the burst).
    assert report["batches"] < _TOTAL / 10
    assert report["max_batch_width"] >= _CLIENTS / 2
    _annotate(benchmark, report)


def test_bench_serve_no_coalesce_baseline(benchmark):
    """The same offered load with coalescing disabled: 1 call per request."""
    report = benchmark.pedantic(
        lambda: _session(coalesce=False), rounds=1, iterations=1
    )
    assert report["batches"] == _TOTAL
    assert report["max_batch_width"] == 1
    _annotate(benchmark, report)


def test_gate_serve_coalescing_throughput():
    """The acceptance gate: coalescing >=5x baseline requests/sec."""
    best = 0.0
    evidence = None
    for _ in range(2):
        coalesced = _REPORTS.get(True) or _session(coalesce=True)
        baseline = _REPORTS.get(False) or _session(coalesce=False)
        ratio = coalesced["req_per_s"] / baseline["req_per_s"]
        if ratio > best:
            best, evidence = ratio, (coalesced, baseline)
        if best >= 5.0:
            break
        _REPORTS.clear()  # re-measure both sides before giving up
    assert evidence is not None
    coalesced, baseline = evidence
    assert best >= 5.0, (
        f"coalescing delivered {best:.2f}x baseline throughput "
        f"(coalesced {coalesced['req_per_s']:.0f} req/s "
        f"p50 {coalesced['p50_ms']:.1f} ms p99 {coalesced['p99_ms']:.1f} ms; "
        f"baseline {baseline['req_per_s']:.0f} req/s "
        f"p50 {baseline['p50_ms']:.1f} ms p99 {baseline['p99_ms']:.1f} ms); "
        f"gate is 5x"
    )
