"""Benchmark: regenerate Figure 10 (break-even images and days)."""

from repro.experiments.fig10_breakeven import run


def test_bench_fig10(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    table = result.table("break_even")
    mnv3_cpu = table.where(
        lambda r: r["model"] == "mobilenet_v3" and r["processor"] == "cpu"
    ).row(0)
    assert abs(mnv3_cpu["break_even_images"] - 5e9) / 5e9 < 0.02
    assert abs(mnv3_cpu["break_even_days"] - 350.0) < 7.0
    mnv3_dsp = table.where(
        lambda r: r["model"] == "mobilenet_v3" and r["processor"] == "dsp"
    ).row(0)
    assert not mnv3_dsp["within_lifetime"]
