"""Benchmark: regenerate Table III (grid intensities)."""

from repro.experiments.tab03_grid_intensity import run


def test_bench_tab03(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    rows = {row["region"]: row["g_per_kwh"] for row in result.table("grids")}
    assert rows["united_states"] == 380.0 and rows["iceland"] == 28.0
