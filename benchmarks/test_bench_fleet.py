"""Benchmark: fleet simulation reproducing the Figure 2/11 mechanism
(ext04), plus a scale run at ten years and a larger fleet."""

from repro.datacenter.fleet import simulate_fleet, simulate_fleet_batch
from repro.experiments.ext04_fleet import facebook_like_parameters, run
from dataclasses import replace


def test_bench_fleet_mechanism(benchmark):
    # The deterministic Figure 2/11 mechanism this bench has always
    # gated. ext04's run() additionally samples a 256-draw uncertainty
    # band since PR 4; that bigger experiment is timed separately below
    # so a deliberate workload growth cannot mask a kernel regression.
    params = facebook_like_parameters()
    table = benchmark(lambda: simulate_fleet_batch([params]).to_table())
    assert table.num_rows == params.years


def test_bench_fleet_experiment_with_uncertainty(benchmark):
    """Full ext04 run(): mechanism + 256-draw CI sweep + checks."""
    result = benchmark(run)
    assert result.all_checks_pass


def test_bench_fleet_decade_scale(benchmark):
    params = replace(
        facebook_like_parameters(), years=10, initial_servers=100_000
    )
    reports = benchmark(lambda: simulate_fleet(params))
    assert len(reports) == 10
    assert reports[-1].servers > reports[0].servers
