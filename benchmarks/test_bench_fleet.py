"""Benchmark: fleet simulation reproducing the Figure 2/11 mechanism
(ext04), plus a scale run at ten years and a larger fleet."""

from repro.datacenter.fleet import simulate_fleet
from repro.experiments.ext04_fleet import facebook_like_parameters, run
from dataclasses import replace


def test_bench_fleet_mechanism(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass


def test_bench_fleet_decade_scale(benchmark):
    params = replace(
        facebook_like_parameters(), years=10, initial_servers=100_000
    )
    reports = benchmark(lambda: simulate_fleet(params))
    assert len(reports) == 10
    assert reports[-1].servers > reports[0].servers
