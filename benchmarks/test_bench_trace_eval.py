"""Benchmark: 270-scenario policy evaluation, batched vs scalar loop.

The traces subsystem's reason to exist: the same traces × workloads ×
policies cross-product through ``evaluate_policies`` (horizon-grouped
matrices, shared per-trace prefix sums, one job loop for the whole
catalog) and through ``evaluate_policies_scalar`` (one scalar
scheduler call per scenario). The acceptance gate is >=10x between the
two recorded means at 100+ scenarios.
"""

from repro.traces import (
    DEFAULT_POLICIES,
    diurnal_workload,
    evaluate_policies,
    evaluate_policies_scalar,
    profile_catalog,
    training_workload,
)

_HOURS = 72
_CAPACITY_KW = 2500.0


def _scenario_inputs():
    catalog = profile_catalog(_HOURS, stochastic_seeds=(0, 1, 2))
    workloads = [
        diurnal_workload(days=2),
        training_workload(num_jobs=8, horizon_hours=48),
    ]
    return catalog, workloads


def test_bench_trace_eval_batched(benchmark):
    catalog, workloads = _scenario_inputs()
    expected = len(catalog) * len(workloads) * len(DEFAULT_POLICIES)
    assert expected >= 100
    table = benchmark(
        lambda: evaluate_policies(catalog, workloads, capacity_kw=_CAPACITY_KW)
    )
    assert table.num_rows == expected
    # Spot-check the batched path against the scalar reference.
    subset = dict(list(catalog.items())[:2])
    batched = evaluate_policies(subset, workloads, capacity_kw=_CAPACITY_KW)
    scalar = evaluate_policies_scalar(subset, workloads, capacity_kw=_CAPACITY_KW)
    for name in batched.column_names:
        assert batched.column(name) == scalar.column(name)


def test_bench_trace_eval_scalar(benchmark):
    catalog, workloads = _scenario_inputs()
    table = benchmark(
        lambda: evaluate_policies_scalar(
            catalog, workloads, capacity_kw=_CAPACITY_KW
        )
    )
    assert table.num_rows == len(catalog) * len(workloads) * len(DEFAULT_POLICIES)
