"""Benchmark: 200-scenario x 256-draw fleet sweep, draw matrix vs loop.

The uncertainty engine's reason to exist: the same distribution-tagged
grid through ``sweep_fleet_uncertain`` (one seeded draw matrix, one
51200-scenario ``simulate_fleet_batch`` call) and through the
per-draw scalar reference (one ``monte_carlo`` over ``simulate_fleet``
per scenario — 51200 scalar simulations). The acceptance gate is
>=10x between the two recorded means; the batched side is additionally
handicapped by sampling all eight fleet metrics where the scalar loop
extracts one.

The scalar loop is measured with a single pedantic round: at ~10s+
per pass, statistical rounds would dominate the suite's runtime
without changing the verdict.
"""

from repro.analysis.uncertainty import (
    Normal,
    Triangular,
    is_distribution,
    monte_carlo,
)
from repro.datacenter.fleet import simulate_fleet
from repro.scenarios import ScenarioGrid, apply_overrides, facebook_like_fleet
from repro.uncertainty import sweep_fleet_uncertain

_DRAWS = 256
_SEED = 11

_GRID = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.75],
        "server.lifetime_years": [2.0, 3.0, 4.0, 5.0, 6.0],
        "facility.pue": [
            Triangular(1.07, 1.10, 1.30),
            Triangular(1.10, 1.25, 1.50),
        ],
        "utilization": [Normal(0.45, 0.06), Normal(0.65, 0.06)],
    }
)


def _scalar_reference(records):
    """The per-draw loop: one monte_carlo per scenario over simulate_fleet."""
    base = facebook_like_fleet()
    results = []
    for record in records:
        fixed = {
            name: value
            for name, value in record.items()
            if not is_distribution(value)
        }
        spec = {
            name: value
            for name, value in record.items()
            if is_distribution(value)
        }

        def model(point, fixed=fixed):
            final = simulate_fleet(apply_overrides(base, {**fixed, **point}))[-1]
            return final.capex_fraction_market

        results.append(monte_carlo(model, spec, samples=_DRAWS, seed=_SEED))
    return results


def test_bench_uncertain_sweep_batch_200x256(benchmark):
    assert len(_GRID) == 200
    base = facebook_like_fleet()
    result = benchmark(
        lambda: sweep_fleet_uncertain(base, _GRID, draws=_DRAWS, seed=_SEED)
    )
    assert result.num_scenarios == 200
    assert result.samples_for("capex_fraction_market").shape == (200, _DRAWS)
    # Spot-check the draw matrix against the scalar reference.
    record = _GRID.scenarios()[137]
    reference = _scalar_reference([record])[0]
    assert list(result.samples_for("capex_fraction_market")[137]) == list(
        reference.samples
    )


def test_bench_uncertain_sweep_scalar_200x256(benchmark):
    records = _GRID.scenarios()
    results = benchmark.pedantic(
        lambda: _scalar_reference(records), rounds=1, iterations=1
    )
    assert len(results) == 200
    assert results[0].samples.shape == (_DRAWS,)
