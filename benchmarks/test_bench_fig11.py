"""Benchmark: regenerate Figure 11 (Facebook/Google scope series)."""

from repro.experiments.fig11_scope_series import run


def test_bench_fig11(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    fb_2019 = result.table("facebook").where(lambda r: r["year"] == 2019).row(0)
    assert abs(fb_2019["scope3_t"] / fb_2019["scope2_market_t"] - 23.0) < 0.5
    goog_2018 = result.table("google").where(lambda r: r["year"] == 2018).row(0)
    assert goog_2018["scope3_t"] == 14_000_000.0
