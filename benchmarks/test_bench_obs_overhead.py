"""Benchmark: observability overhead — tracing must be nearly free.

:mod:`repro.obs` promises two things about cost. With no recorder
installed every instrumentation site hits the shared ``NULL_RECORDER``
no-op, so an untraced run pays nothing measurable. With a
:class:`~repro.obs.TraceRecorder` writing JSONL, a traced sweep must
stay within 1.05x of the untraced run — the trace is spans and
per-chunk events, not per-scenario work, so its cost cannot scale with
the sweep.

Both sides are captured as pytest-benchmark entries (the ratio lands
in each PR's ``BENCH_<tag>.json``), and ``test_gate_tracing_overhead``
hard-asserts the 1.05x target plus a small absolute epsilon so machine
noise on a ~60ms body cannot flake the suite.
"""

from __future__ import annotations

import time

from repro.obs import TraceRecorder, install_recorder
from repro.scenarios import ScenarioGrid, facebook_like_fleet, sweep_fleet

_GRID_1K = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.75],
        "server.lifetime_years": [2.0, 3.0, 4.0, 5.0, 6.0],
        "facility.pue": [1.07, 1.1, 1.15, 1.25, 1.4],
        "utilization": [0.25, 0.45, 0.65, 0.85],
    }
)
_CHUNK = 50  # 20 chunks -> 20+ attempt events per traced run


def _traced_sweep(base, path):
    recorder = TraceRecorder(path)
    try:
        with install_recorder(recorder):
            return sweep_fleet(base, _GRID_1K, chunk_size=_CHUNK)
    finally:
        recorder.close()


def test_bench_fleet_sweep_1k_untraced(benchmark):
    """Baseline: the 1k fleet sweep with no recorder installed."""
    base = facebook_like_fleet()
    table = benchmark(lambda: sweep_fleet(base, _GRID_1K, chunk_size=_CHUNK))
    assert table.num_rows == 1000


def test_bench_fleet_sweep_1k_traced(benchmark, tmp_path):
    """Same sweep under a TraceRecorder writing JSONL to disk."""
    base = facebook_like_fleet()
    table = benchmark(lambda: _traced_sweep(base, tmp_path / "bench.jsonl"))
    assert table.num_rows == 1000


def _best_of(call, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


def test_gate_tracing_overhead(tmp_path):
    """The acceptance gate: traced <= 1.05x untraced (plus 5ms noise).

    Min-of-5 timing on each side after a shared warmup; the epsilon
    absorbs scheduler jitter that a ratio alone would amplify on a
    fast body. A real per-event cost regression (anything per-scenario
    slipping into the recorder path) blows well past both.
    """
    base = facebook_like_fleet()
    # Warm imports/kernels before timing either side.
    sweep_fleet(base, _GRID_1K, chunk_size=_CHUNK)
    untraced = _best_of(
        lambda: sweep_fleet(base, _GRID_1K, chunk_size=_CHUNK), rounds=5
    )
    traced = _best_of(
        lambda: _traced_sweep(base, tmp_path / "gate.jsonl"), rounds=5
    )
    budget = untraced * 1.05 + 0.005
    assert traced <= budget, (
        f"traced sweep {traced:.4f}s vs untraced {untraced:.4f}s "
        f"({traced / untraced:.3f}x); gate is 1.05x + 5ms"
    )


def test_traced_sweep_is_bit_identical(tmp_path):
    """Tracing must never perturb results: traced == untraced, bitwise."""
    base = facebook_like_fleet()
    plain = sweep_fleet(base, _GRID_1K, chunk_size=_CHUNK)
    traced = _traced_sweep(base, tmp_path / "ident.jsonl")
    assert traced == plain
