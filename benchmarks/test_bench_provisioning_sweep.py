"""Benchmark: 1000-scenario provisioning sweep, batched vs scalar loop.

The batched ceil-divide/argmin kernel prices a utilization × demand
grid in one call; the scalar loop re-runs provision_heterogeneous per
scenario. The acceptance gate is >=10x between the two recorded means.
"""

import numpy as np

from repro.datacenter.heterogeneity import (
    WorkloadClass,
    provision_heterogeneous,
    provision_heterogeneous_batch,
)
from repro.scenarios.presets import example_service_mix

_TARGETS = np.linspace(0.3, 0.95, 40)
_SCALES = np.linspace(0.5, 8.0, 25)


def _axes():
    targets = np.repeat(_TARGETS, len(_SCALES))
    scales = np.tile(_SCALES, len(_TARGETS))
    return targets, scales


def test_bench_provisioning_sweep_batch_1k(benchmark):
    workloads, _, server_types = example_service_mix()
    targets, scales = _axes()
    assert len(targets) == 1000
    result = benchmark(
        lambda: provision_heterogeneous_batch(
            workloads, server_types, targets, scales
        )
    )
    assert result.num_scenarios == 1000
    # Spot-check against the scalar reference.
    index = 421
    scaled = [
        WorkloadClass(w.name, w.demand_rps * float(scales[index]))
        for w in workloads
    ]
    reference = provision_heterogeneous(
        scaled, server_types, float(targets[index])
    )
    assert result.plan(index).assignments == reference.assignments


def test_bench_provisioning_sweep_scalar_1k(benchmark):
    workloads, _, server_types = example_service_mix()
    targets, scales = _axes()

    def loop():
        plans = []
        for target, scale in zip(targets, scales):
            scaled = [
                WorkloadClass(w.name, w.demand_rps * float(scale))
                for w in workloads
            ]
            plans.append(
                provision_heterogeneous(scaled, server_types, float(target))
            )
        return plans

    assert len(benchmark(loop)) == 1000
