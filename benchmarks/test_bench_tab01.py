"""Benchmark: regenerate Table I (scope taxonomy)."""

from repro.experiments.tab01_scope_taxonomy import run


def test_bench_tab01(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    assert result.table("taxonomy").num_rows == 3
