"""Benchmark: regenerate Figure 6 (device LCA splits and absolutes)."""

from repro.experiments.fig06_device_lca import run


def test_bench_fig06(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    per_power = result.table("per_power_class")
    battery = per_power.where(
        lambda r: r["power_class"] == "battery_powered"
    ).row(0)
    assert 0.70 <= battery["manufacturing_mean"] <= 0.80
