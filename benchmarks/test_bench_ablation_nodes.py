"""Ablation benchmark: process-node sweep with abatement (ext03)."""

from repro.experiments.ext03_node_sweep import run


def test_bench_ablation_nodes(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    per_cm2 = result.table("roadmap").column("per_cm2_kg")
    assert per_cm2[-1] > per_cm2[0]
