"""Benchmark: 100k-device x 64-scenario portfolio sweep, batch vs scalar.

The portfolio layer's reason to exist: the same fleet decision space
through ``sweep_portfolio`` (struct-of-arrays kernels over every
device x scenario cell at once) and through the per-device
``simulate_device`` scalar loop. The batched side runs the full
100,000-device catalog (6.4M device-scenario rows); the scalar side is
a documented 100-device subsample — at ~75us per scalar row, the full
loop would take over eight minutes per round without changing the
verdict. Both sides are measured with a single pedantic round.

The acceptance gate is >=10x *per-row* throughput between the two
sides; ``test_bench_portfolio_throughput_gate`` enforces it directly
(the recorded means cover different row counts, so the snapshot
comparison alone cannot).
"""

import dataclasses
import time

from repro.portfolio import (
    default_catalog,
    simulate_device,
    sweep_portfolio,
)
from repro.scenarios import ScenarioGrid

_GRID = ScenarioGrid(
    **{
        "node_shift": [0.0, 1.0, 2.0, 3.0],
        "fab_intensity_g_per_kwh": [583.0, 400.0, 250.0, 100.0],
        "lifetime_scale": [1.0, 1.1, 1.25, 1.5],
    }
)

_COPIES = 12_500  # x 8 archetypes = 100k devices
_CACHE: dict = {}


def _fleet(copies: int) -> tuple:
    """``copies`` spins of the default catalog with per-spin variation.

    Die areas wobble so the yield/wafer math cannot be memoized away,
    and unit counts are scaled so fleet totals stay comparable to the
    8-archetype sweep.
    """
    if copies not in _CACHE:
        base = default_catalog()
        _CACHE[copies] = tuple(
            dataclasses.replace(
                spec,
                name=f"{spec.name}_{spin}",
                die_area_mm2=spec.die_area_mm2 * (1.0 + 0.1 * (spin % 7) / 7.0),
                units=spec.units / copies,
            )
            for spin in range(copies)
            for spec in base
        )
    return _CACHE[copies]


def _scalar_loop(catalog, records) -> int:
    rows = 0
    for record in records:
        for spec in catalog:
            simulate_device(dataclasses.replace(spec, **record))
            rows += 1
    return rows


def test_bench_portfolio_sweep_batch_100k_x64(benchmark):
    catalog = _fleet(_COPIES)
    assert len(catalog) == 100_000
    assert len(_GRID) == 64
    table = benchmark.pedantic(
        lambda: sweep_portfolio(catalog, _GRID), rounds=1, iterations=1
    )
    assert table.num_rows == 64
    assert table.column("devices") == [100_000] * 64
    assert all(value > 0.0 for value in table.column("embodied_t"))


def test_bench_portfolio_sweep_scalar_100_x64(benchmark):
    catalog = _fleet(_COPIES)[:100]
    records = list(_GRID)
    rows = benchmark.pedantic(
        lambda: _scalar_loop(catalog, records), rounds=1, iterations=1
    )
    assert rows == 6400


def test_bench_portfolio_throughput_gate():
    """Batched per-row throughput must beat the scalar loop >=10x."""
    catalog = _fleet(2_500)  # 20k devices keeps the gate check snappy
    began = time.perf_counter()
    table = sweep_portfolio(catalog, _GRID)
    batch_per_row = (time.perf_counter() - began) / (
        len(catalog) * len(_GRID)
    )
    assert table.num_rows == 64

    subsample = catalog[:100]
    records = list(_GRID)[:8]
    began = time.perf_counter()
    rows = _scalar_loop(subsample, records)
    scalar_per_row = (time.perf_counter() - began) / rows

    speedup = scalar_per_row / batch_per_row
    assert speedup >= 10.0, (
        f"batched sweep only {speedup:.1f}x faster per row "
        f"({batch_per_row * 1e6:.2f}us vs {scalar_per_row * 1e6:.2f}us)"
    )
