"""Benchmark: regenerate Figure 2 (energy-vs-carbon divergence and
opex/capex pies for iPhone 3GS vs 11 and Facebook 2018)."""

from repro.experiments.fig02_opex_capex_shift import run


def test_bench_fig02(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    pies = result.table("opex_capex_pies")
    assert abs(pies.row(0)["capex"] - 0.49) < 0.01   # iPhone 3GS
    assert abs(pies.row(1)["capex"] - 0.86) < 0.01   # iPhone 11
    assert abs(pies.row(3)["capex"] - 0.82) < 0.01   # FB 2018 market-based
