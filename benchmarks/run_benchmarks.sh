#!/usr/bin/env bash
# Run the full pytest-benchmark suite and record a JSON snapshot so the
# performance trajectory is visible per PR.
#
# Usage:
#   benchmarks/run_benchmarks.sh [tag]
#
# Writes benchmarks/BENCH_<tag>.json (tag defaults to today's date,
# YYYYMMDD). Compare two snapshots with:
#   python -m pytest_benchmark compare benchmarks/BENCH_*.json
set -euo pipefail

cd "$(dirname "$0")/.."
tag="${1:-$(date +%Y%m%d)}"
out="benchmarks/BENCH_${tag}.json"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks \
    -q --benchmark-json="$out" "${@:2}"

echo "benchmark snapshot written to $out"
