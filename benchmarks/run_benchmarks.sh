#!/usr/bin/env bash
# Run the FULL pytest-benchmark suite and record a JSON snapshot so the
# performance trajectory is visible per PR. Always captures every
# benchmark under benchmarks/ — partial snapshots make regression
# guards blind.
#
# Usage:
#   benchmarks/run_benchmarks.sh [tag] [--compare BASELINE.json] [pytest args...]
#
# Writes benchmarks/BENCH_<tag>.json (tag defaults to today's date,
# YYYYMMDD). With --compare, the snapshot is then diffed against the
# given baseline and the script exits non-zero on any shared benchmark
# regressing by more than 2x mean time (see compare_benchmarks.py).
set -euo pipefail

cd "$(dirname "$0")/.."
tag="$(date +%Y%m%d)"
if [[ $# -gt 0 && "$1" != -* ]]; then
    tag="$1"
    shift
fi
out="benchmarks/BENCH_${tag}.json"

baseline=""
passthrough=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --compare)
            if [[ $# -lt 2 ]]; then
                echo "usage: $0 [tag] [--compare BASELINE.json] [pytest args...]" >&2
                exit 2
            fi
            baseline="$2"
            shift 2
            ;;
        *)
            passthrough+=("$1")
            shift
            ;;
    esac
done

# The ${array[@]+...} form keeps the empty-array expansion safe under
# `set -u` on bash < 4.4.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks \
    -q --benchmark-json="$out" ${passthrough[@]+"${passthrough[@]}"}

echo "benchmark snapshot written to $out"

if [[ -n "$baseline" ]]; then
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python \
        benchmarks/compare_benchmarks.py "$baseline" "$out"
fi
