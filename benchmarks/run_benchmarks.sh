#!/usr/bin/env bash
# Run the FULL pytest-benchmark suite and record a JSON snapshot so the
# performance trajectory is visible per PR. Always captures every
# benchmark under benchmarks/ — partial snapshots make regression
# guards blind.
#
# Usage:
#   benchmarks/run_benchmarks.sh [tag] [--compare BASELINE.json] [--quick] \
#       [pytest args...]
#
# Writes benchmarks/BENCH_<tag>.json (tag defaults to today's date,
# YYYYMMDD). With --compare, the snapshot is then diffed against the
# given baseline and the script exits non-zero on any shared benchmark
# regressing by more than 2x mean time (see compare_benchmarks.py).
#
# --quick is a smoke mode: every benchmark body runs exactly once with
# timing disabled (--benchmark-disable), no snapshot is written and no
# comparison runs — it proves the suite still *executes* in seconds,
# for use in pre-commit loops where a full timed run is too slow.
set -euo pipefail

cd "$(dirname "$0")/.."
tag="$(date +%Y%m%d)"
if [[ $# -gt 0 && "$1" != -* ]]; then
    tag="$1"
    shift
fi
out="benchmarks/BENCH_${tag}.json"

baseline=""
quick=0
passthrough=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --compare)
            if [[ $# -lt 2 ]]; then
                echo "usage: $0 [tag] [--compare BASELINE.json] [--quick] [pytest args...]" >&2
                exit 2
            fi
            baseline="$2"
            shift 2
            ;;
        --quick)
            quick=1
            shift
            ;;
        *)
            passthrough+=("$1")
            shift
            ;;
    esac
done

if [[ "$quick" -eq 1 ]]; then
    if [[ -n "$baseline" ]]; then
        echo "--quick runs untimed; it cannot be combined with --compare" >&2
        exit 2
    fi
    # The ${array[@]+...} form keeps the empty-array expansion safe
    # under `set -u` on bash < 4.4.
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks \
        -q --benchmark-disable ${passthrough[@]+"${passthrough[@]}"}
    # Chaos smoke: a seeded fault storm over a real sweep must recover
    # to a bit-identical result, and — traced — its attempt events must
    # match the injected schedule (see tools/chaos_sweep.py).
    trace="$(mktemp -t chaos_trace.XXXXXX.jsonl)"
    trap 'rm -f "$trace"' EXIT
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python tools/chaos_sweep.py \
        --trace-out "$trace"
    # Portfolio smoke: the device-axis-sharded sweep must survive the
    # same storm (its chunk starts come from SweepSpec.axis_size).
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python tools/chaos_sweep.py \
        --sweep portfolio
    # Stats smoke: the trace the storm just wrote must render.
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro stats "$trace"
    # Serve smoke: a concurrent-client burst against the in-process
    # sweep service, both coalesced and baseline, must answer every
    # request (see tools/load_gen.py; the 5x throughput gate lives in
    # benchmarks/test_bench_serve.py, run above).
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python tools/load_gen.py \
        --clients 200
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python tools/load_gen.py \
        --clients 200 --no-coalesce
    echo "quick smoke run complete (untimed; no snapshot written)"
    exit 0
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest benchmarks \
    -q --benchmark-json="$out" ${passthrough[@]+"${passthrough[@]}"}

echo "benchmark snapshot written to $out"

if [[ -n "$baseline" ]]; then
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python \
        benchmarks/compare_benchmarks.py "$baseline" "$out"
fi
