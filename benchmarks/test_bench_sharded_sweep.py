"""Benchmark: sharded sweep executor — chunked memory, multi-core scaling.

Measures the :mod:`repro.exec` layer on the two sweeps the issue
gates: the 1000-scenario deterministic fleet sweep and the
200-scenario × 256-draw uncertain fleet sweep, each at ``jobs=1``
(chunked inline: the overhead side — chunking must stay within noise
of monolithic) and at ``jobs=4`` / ``jobs=cpu_count`` (one pedantic
round each: pool startup is part of the honest cost).

The wall-clock speedup *gate* (>=2x at 4 jobs for the 1k fleet sweep)
lives in ``test_gate_sharded_fleet_speedup_at_4_jobs`` and is skipped
on machines with fewer than 4 cores — a process pool cannot beat the
inline path without cores to run on, and a gate that fails on every
laptop teaches people to ignore gates. The equivalence half of the
contract (sharded == monolithic bit for bit) is asserted here at
every configuration regardless of core count.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.uncertainty import Normal, Triangular
from repro.scenarios import ScenarioGrid, facebook_like_fleet, sweep_fleet
from repro.uncertainty import sweep_fleet_uncertain

_CORES = os.cpu_count() or 1

_GRID_1K = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.75],
        "server.lifetime_years": [2.0, 3.0, 4.0, 5.0, 6.0],
        "facility.pue": [1.07, 1.1, 1.15, 1.25, 1.4],
        "utilization": [0.25, 0.45, 0.65, 0.85],
    }
)

_GRID_UNCERTAIN = ScenarioGrid(
    **{
        "annual_growth": [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.75],
        "server.lifetime_years": [2.0, 3.0, 4.0, 5.0, 6.0],
        "facility.pue": [
            Triangular(1.07, 1.10, 1.30),
            Triangular(1.10, 1.25, 1.50),
        ],
        "utilization": [Normal(0.45, 0.06), Normal(0.65, 0.06)],
    }
)
_DRAWS = 256
_SEED = 11


def test_bench_sharded_fleet_sweep_1k_chunked(benchmark):
    """Inline chunked run: memory bounded to 128-scenario kernels."""
    base = facebook_like_fleet()
    reference = sweep_fleet(base, _GRID_1K)
    table = benchmark(lambda: sweep_fleet(base, _GRID_1K, chunk_size=128))
    assert table.num_rows == 1000
    assert table == reference


def test_bench_sharded_fleet_sweep_1k_jobs4(benchmark):
    """Process-pool run at 4 jobs (single pedantic round, pool included)."""
    base = facebook_like_fleet()
    reference = sweep_fleet(base, _GRID_1K)
    table = benchmark.pedantic(
        lambda: sweep_fleet(base, _GRID_1K, jobs=4), rounds=1, iterations=1
    )
    assert table == reference


def test_bench_sharded_uncertain_sweep_chunked(benchmark):
    """200 x 256 uncertain sweep, inline with 25-scenario chunks."""
    base = facebook_like_fleet()
    result = benchmark.pedantic(
        lambda: sweep_fleet_uncertain(
            base, _GRID_UNCERTAIN, draws=_DRAWS, seed=_SEED, chunk_size=25
        ),
        rounds=1,
        iterations=1,
    )
    assert result.num_scenarios == 200
    assert result.draws == _DRAWS


def test_bench_sharded_uncertain_sweep_jobs_cpu(benchmark):
    """200 x 256 uncertain sweep across one job per core."""
    base = facebook_like_fleet()
    result = benchmark.pedantic(
        lambda: sweep_fleet_uncertain(
            base, _GRID_UNCERTAIN, draws=_DRAWS, seed=_SEED, jobs=max(_CORES, 2)
        ),
        rounds=1,
        iterations=1,
    )
    assert result.num_scenarios == 200


def test_bench_sharded_fleet_sweep_1k_retry_armed(benchmark):
    """Clean-path run with a retry budget armed: overhead must be noise."""
    base = facebook_like_fleet()
    reference = sweep_fleet(base, _GRID_1K)
    table = benchmark(
        lambda: sweep_fleet(base, _GRID_1K, chunk_size=128, retries=2)
    )
    assert table == reference


def _best_of(call, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        call()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.skipif(
    _CORES < 4,
    reason=f"speedup gate needs >= 4 cores, machine has {_CORES}",
)
def test_gate_sharded_fleet_speedup_at_4_jobs():
    """The acceptance gate: >=2x wall-clock at 4 jobs vs inline."""
    base = facebook_like_fleet()
    # Warm imports/kernels before timing either side.
    sweep_fleet(base, _GRID_1K)
    inline = _best_of(lambda: sweep_fleet(base, _GRID_1K), rounds=3)
    sharded = _best_of(lambda: sweep_fleet(base, _GRID_1K, jobs=4), rounds=3)
    assert inline / sharded >= 2.0, (
        f"sharded 1k fleet sweep at 4 jobs: {inline / sharded:.2f}x "
        f"(inline {inline:.3f}s, jobs=4 {sharded:.3f}s); gate is 2x"
    )


def test_gate_retry_overhead_on_clean_path():
    """Arming retries must not slow a fault-free sweep.

    The target is <5% overhead; the hard assert is a generous 1.25x so
    machine noise cannot flake the suite — the measured ratio lands in
    the benchmark JSON via ``test_bench_sharded_fleet_sweep_1k_retry_armed``
    where the trajectory is tracked per PR.
    """
    base = facebook_like_fleet()
    # Warm imports/kernels before timing either side.
    sweep_fleet(base, _GRID_1K, chunk_size=128)
    plain = _best_of(
        lambda: sweep_fleet(base, _GRID_1K, chunk_size=128), rounds=3
    )
    armed = _best_of(
        lambda: sweep_fleet(base, _GRID_1K, chunk_size=128, retries=2),
        rounds=3,
    )
    ratio = armed / plain
    assert ratio <= 1.25, (
        f"retry-armed clean path: {ratio:.3f}x the plain run "
        f"(plain {plain:.3f}s, armed {armed:.3f}s); gate is 1.25x"
    )
