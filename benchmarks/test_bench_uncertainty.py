"""Benchmark: Monte Carlo uncertainty propagation throughput.

Propagates coefficient uncertainty through the Pixel 3 break-even model
(the Figure 10 headline) — the kind of analysis the paper's "better
accounting" direction calls for.
"""

from repro.analysis.uncertainty import Triangular, Uniform, monte_carlo
from repro.core.amortization import break_even_days
from repro.units import Carbon, CarbonIntensity, Power


def _model(params):
    return break_even_days(
        Carbon.kg(params["capex_kg"]),
        Power.watts(params["power_w"]),
        CarbonIntensity.g_per_kwh(params["grid_g_per_kwh"]),
    )


_SPEC = {
    "capex_kg": Triangular(15.0, 22.4, 30.0),
    "power_w": Triangular(5.0, 7.0, 9.0),
    "grid_g_per_kwh": Uniform(295.0, 583.0),
}


def test_bench_breakeven_uncertainty(benchmark):
    """Batched path: the model sees every draw array at once."""
    result = benchmark(
        lambda: monte_carlo(_model, _SPEC, samples=5000, seed=11, vectorized=True)
    )
    low, high = result.interval(0.90)
    # The paper's 350-day point estimate sits inside the band.
    assert low < 350.0 < high


def test_bench_breakeven_uncertainty_scalar(benchmark):
    """Per-sample loop baseline over the same model and draws."""
    result = benchmark(
        lambda: monte_carlo(_model, _SPEC, samples=5000, seed=11)
    )
    low, high = result.interval(0.90)
    assert low < 350.0 < high
