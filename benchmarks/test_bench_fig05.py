"""Benchmark: regenerate Figure 5 (Apple 2019 footprint breakdown)."""

from repro.experiments.fig05_apple_breakdown import run


def test_bench_fig05(benchmark):
    result = benchmark(run)
    assert result.all_checks_pass
    groups = {row["group"]: row["fraction"] for row in result.table("groups")}
    assert abs(groups["manufacturing"] - 0.74) < 0.01
    assert abs(groups["product_use"] - 0.19) < 0.01
